"""Deterministic fault injection for the planning pipeline.

A :class:`FaultInjector` sits inside the stage runner: every stage
attempt first calls ``injector.on_call(stage)``, which counts calls
per stage and fires any :class:`FaultSpec` armed for that call number
— sleeping (to exercise deadlines) and/or raising (to exercise retry,
fallback, and batch isolation paths). Counting is the only state, so
injection is fully deterministic and CI-friendly.

Example — fail the first floorplan attempt, delay the second routing
attempt by 50 ms::

    faults = FaultInjector([
        FaultSpec("floorplan", error=FloorplanError("injected")),
        FaultSpec("route", on_call=2, delay=0.05),
    ])
    plan_interconnect(graph, faults=faults)
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import PlanningError

ErrorLike = Union[BaseException, type, Callable[[], BaseException]]


def _make_error(error: ErrorLike, stage: str) -> BaseException:
    if isinstance(error, BaseException):
        return error
    if isinstance(error, type) and issubclass(error, BaseException):
        return error(f"injected fault in stage {stage!r}")
    return error()


@dataclasses.dataclass
class FaultSpec:
    """One armed fault.

    Attributes:
        stage: Stage name the fault is armed for (``floorplan``,
            ``route``, ...).
        error: Exception instance, class, or zero-arg factory raised
            when the fault fires; ``None`` injects only the delay.
        delay: Seconds to sleep before (optionally) raising.
        on_call: 1-based call number of the stage at which the fault
            fires. Calls are counted across the whole run, so e.g.
            ``on_call=2`` for ``route`` hits the second planning
            iteration's routing (or the first retry).
        repeat: Fire on every call >= ``on_call`` instead of only the
            Nth — turns a transient fault into a permanent one.
    """

    stage: str
    error: Optional[ErrorLike] = None
    delay: float = 0.0
    on_call: int = 1
    repeat: bool = False

    def fires(self, call_index: int) -> bool:
        if self.repeat:
            return call_index >= self.on_call
        return call_index == self.on_call


class FaultInjector:
    """Counts stage calls and fires armed :class:`FaultSpec` entries."""

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        self.specs: List[FaultSpec] = list(specs)
        self._calls: Dict[str, int] = {}

    def arm(self, spec: FaultSpec) -> "FaultInjector":
        self.specs.append(spec)
        return self

    def calls(self, stage: str) -> int:
        """How many times ``stage`` has been entered so far."""
        return self._calls.get(stage, 0)

    def on_call(self, stage: str) -> None:
        """Stage-entry hook; fires any spec armed for this call."""
        index = self._calls.get(stage, 0) + 1
        self._calls[stage] = index
        for spec in self.specs:
            if spec.stage == stage and spec.fires(index):
                if spec.delay > 0:
                    time.sleep(spec.delay)
                if spec.error is not None:
                    raise _make_error(spec.error, stage)

    @classmethod
    def fail_once(
        cls, *stages: str, error: Optional[ErrorLike] = None
    ) -> "FaultInjector":
        """Injector that fails the first attempt of each given stage."""
        return cls(
            [
                FaultSpec(
                    stage,
                    error=error
                    or PlanningError(f"injected fault in stage {stage!r}"),
                )
                for stage in stages
            ]
        )

    @classmethod
    def fail_always(
        cls, *stages: str, error: Optional[ErrorLike] = None
    ) -> "FaultInjector":
        """Injector that fails every attempt of each given stage."""
        return cls(
            [
                FaultSpec(
                    stage,
                    error=error or PlanningError,
                    repeat=True,
                )
                for stage in stages
            ]
        )
