"""Resilience layer for the planning flow.

The planner in :mod:`repro.core.planner` is a seven-stage pipeline in
which, historically, the only anticipated failure was
:class:`~repro.errors.InfeasiblePeriodError`. This subpackage makes
every stage survivable:

* :mod:`repro.resilience.policy` — per-stage execution policies
  (bounded retries, wall-clock deadlines, retryable exception sets);
* :mod:`repro.resilience.runner` — the stage runner that executes a
  callable under a policy with retry, fallback chains, and timeouts;
* :mod:`repro.resilience.ledger` — the structured run ledger recording
  every attempt, error, timing, and fallback taken;
* :mod:`repro.resilience.degrade` — graceful ``T_clk`` degradation
  (binary search for the closest achievable period);
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness so every recovery path is testable in CI;
* :mod:`repro.resilience.batch` — a fault-isolated batch runner used
  by the Table-1 harness and the CLI.
"""

from repro.resilience.batch import BatchItem, BatchResult, run_batch
from repro.resilience.degrade import find_relaxed_period
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.ledger import RunLedger, StageAttempt, StageRecord
from repro.resilience.policy import (
    ResilienceConfig,
    StagePolicy,
    default_resilience,
)
from repro.resilience.runner import StageRunner

__all__ = [
    "BatchItem",
    "BatchResult",
    "run_batch",
    "find_relaxed_period",
    "FaultInjector",
    "FaultSpec",
    "RunLedger",
    "StageAttempt",
    "StageRecord",
    "ResilienceConfig",
    "StagePolicy",
    "default_resilience",
    "StageRunner",
]
