"""Resilience layer for the planning flow.

The planner in :mod:`repro.core.planner` is a seven-stage pipeline in
which, historically, the only anticipated failure was
:class:`~repro.errors.InfeasiblePeriodError`. This subpackage makes
every stage survivable:

* :mod:`repro.resilience.policy` — per-stage execution policies
  (bounded retries, wall-clock deadlines, retryable exception sets);
* :mod:`repro.resilience.runner` — the stage runner that executes a
  callable under a policy with retry, fallback chains, and timeouts;
* :mod:`repro.resilience.ledger` — the structured run ledger recording
  every attempt, error, timing, and fallback taken;
* :mod:`repro.resilience.degrade` — graceful ``T_clk`` degradation
  (binary search for the closest achievable period);
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (stage failures, delays, simulated kills, checkpoint
  corruption) so every recovery path is testable in CI;
* :mod:`repro.resilience.batch` — a fault-isolated batch runner used
  by the Table-1 harness and the CLI;
* :mod:`repro.resilience.checkpoint` — crash-safe, versioned
  stage-boundary checkpoints (schema ``repro-ckpt/1``) with atomic
  writes, checksum/fingerprint validation, and quarantine of corrupt
  files, powering ``plan --checkpoint-dir``/``--resume``.

:func:`repro.ioutil.atomic_write` (re-exported here) is the shared
durable-write primitive every on-disk artifact goes through.
"""

from repro.ioutil import atomic_write
from repro.resilience.batch import BatchItem, BatchResult, run_batch
from repro.resilience.checkpoint import (
    CKPT_SCHEMA,
    CheckpointManager,
    run_fingerprint,
)
from repro.resilience.degrade import find_relaxed_period
from repro.resilience.faults import (
    RESULT_FAULT_KINDS,
    RESULT_FAULT_OWNER,
    SERVE_FAULT_ENV,
    SERVE_FAULT_KINDS,
    WORKER_CRASH_EXIT,
    CheckpointFault,
    FaultInjector,
    FaultSpec,
    ResultFault,
    ServeFault,
)
from repro.resilience.ledger import RunLedger, StageAttempt, StageRecord
from repro.resilience.policy import (
    ResilienceConfig,
    StagePolicy,
    default_resilience,
)
from repro.resilience.runner import StageRunner

__all__ = [
    "atomic_write",
    "BatchItem",
    "BatchResult",
    "run_batch",
    "CKPT_SCHEMA",
    "CheckpointManager",
    "run_fingerprint",
    "find_relaxed_period",
    "CheckpointFault",
    "FaultInjector",
    "FaultSpec",
    "ResultFault",
    "ServeFault",
    "RESULT_FAULT_KINDS",
    "RESULT_FAULT_OWNER",
    "SERVE_FAULT_ENV",
    "SERVE_FAULT_KINDS",
    "WORKER_CRASH_EXIT",
    "RunLedger",
    "StageAttempt",
    "StageRecord",
    "ResilienceConfig",
    "StagePolicy",
    "default_resilience",
    "StageRunner",
]
