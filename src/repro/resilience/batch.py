"""Fault-isolated batch execution.

``run_batch`` runs a sequence of named work items, catching
:class:`~repro.errors.ReproError` (by default) per item so one bad
circuit cannot kill a whole Table-1 regeneration. The result records
per-item status, error text, and timing; ``exit_code`` is nonzero only
when *every* item failed — a partial table is a success.

A SIGINT/SIGTERM delivered through the CLI's handlers arrives as
:class:`~repro.errors.InterruptedRunError`; the batch stops, keeps the
items already finished, and marks the result ``interrupted`` so the
driver can print the partial table and exit with the "interrupted,
resumable" code instead of a generic failure.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple, Type

from repro.errors import InterruptedRunError, ReproError


@dataclasses.dataclass
class BatchItem:
    """Outcome of one batch item."""

    name: str
    ok: bool
    result: Any = None
    error: Optional[str] = None  # "ExcType: message" when failed
    seconds: float = 0.0

    @property
    def status(self) -> str:
        return "ok" if self.ok else "FAILED"


@dataclasses.dataclass
class BatchResult:
    """All items of one batch run."""

    items: List[BatchItem] = dataclasses.field(default_factory=list)
    interrupted: bool = False  # stopped by SIGINT/SIGTERM; resumable

    @property
    def n_ok(self) -> int:
        return sum(1 for i in self.items if i.ok)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    @property
    def failed(self) -> List[BatchItem]:
        return [i for i in self.items if not i.ok]

    @property
    def results(self) -> List[Any]:
        """Results of successful items, in order."""
        return [i.result for i in self.items if i.ok]

    @property
    def exit_code(self) -> int:
        """0 while anything succeeded; 1 only when everything failed."""
        if not self.items:
            return 1
        return 0 if self.n_ok > 0 else 1

    def summary(self) -> str:
        parts = [f"{self.n_ok}/{len(self.items)} circuits ok"]
        if self.interrupted:
            parts.append("interrupted (resumable)")
        for item in self.failed:
            parts.append(f"{item.name} FAILED ({item.error})")
        return "; ".join(parts)


def run_batch(
    work: Sequence[Tuple[str, Callable[[], Any]]],
    catch: Tuple[Type[BaseException], ...] = (ReproError,),
    on_item: Optional[Callable[[BatchItem], None]] = None,
) -> BatchResult:
    """Run ``(name, thunk)`` items, isolating ``catch`` failures.

    Exceptions outside ``catch`` (genuine bugs, a plain
    ``KeyboardInterrupt``) propagate immediately; an
    :class:`~repro.errors.InterruptedRunError` stops the batch but
    returns the partial result with ``interrupted`` set — the item in
    flight is not recorded (its checkpoints, if any, make it
    resumable). ``on_item`` is called after each item — batch drivers
    use it for progress output.
    """
    batch = BatchResult()
    for name, thunk in work:
        start = time.perf_counter()
        try:
            result = thunk()
        except InterruptedRunError:
            batch.interrupted = True
            return batch
        except catch as exc:
            item = BatchItem(
                name=name,
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
                seconds=time.perf_counter() - start,
            )
        else:
            item = BatchItem(
                name=name,
                ok=True,
                result=result,
                seconds=time.perf_counter() - start,
            )
        batch.items.append(item)
        if on_item is not None:
            on_item(item)
    return batch
