"""Per-stage execution policies for the resilient planner.

A :class:`StagePolicy` says how one pipeline stage may be executed:
how many attempts it gets, which exceptions justify a retry, and an
optional per-attempt wall-clock deadline. A :class:`ResilienceConfig`
maps stage names to policies and carries flow-level switches such as
graceful ``T_clk`` degradation.

Stage names used by the planner:

``partition``, ``floorplan``, ``tiles``, ``route``, ``repeater``,
``expand``, ``retime``, ``expand_floorplan``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple, Type

from repro.errors import ReproError


@dataclasses.dataclass(frozen=True)
class StagePolicy:
    """How one stage may be executed.

    Attributes:
        max_attempts: Tries of the primary variant (>= 1). Retries are
            meaningful for seeded stages (floorplan SA, routing
            jitter): the runner passes the attempt index so the stage
            can perturb its seed.
        timeout: Per-attempt wall-clock deadline in seconds; ``None``
            disables the deadline. A blown deadline counts like a
            retryable failure (:class:`~repro.errors.StageTimeoutError`).
        retry_on: Exception classes that justify another attempt or a
            fallback variant. Anything else propagates immediately —
            genuine bugs should not be masked by retries.
    """

    max_attempts: int = 1
    timeout: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (ReproError,)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")


@dataclasses.dataclass
class ResilienceConfig:
    """Flow-level resilience settings: stage policies plus switches.

    Attributes:
        policies: Stage name -> policy; stages not listed use
            ``default_policy``.
        default_policy: Policy for unlisted stages.
        degrade_t_clk: When the target period is infeasible, relax it
            toward ``T_init`` (recording a ``degraded`` iteration)
            instead of marking the iteration infeasible.
    """

    policies: Dict[str, StagePolicy] = dataclasses.field(default_factory=dict)
    default_policy: StagePolicy = dataclasses.field(default_factory=StagePolicy)
    degrade_t_clk: bool = True

    def policy_for(self, stage: str) -> StagePolicy:
        return self.policies.get(stage, self.default_policy)

    def with_timeout(self, seconds: Optional[float]) -> "ResilienceConfig":
        """Copy of this config with every stage given a deadline."""
        policies = {
            name: dataclasses.replace(p, timeout=seconds)
            for name, p in self.policies.items()
        }
        return ResilienceConfig(
            policies=policies,
            default_policy=dataclasses.replace(
                self.default_policy, timeout=seconds
            ),
            degrade_t_clk=self.degrade_t_clk,
        )


def default_resilience() -> ResilienceConfig:
    """The planner's default posture.

    Seeded, stochastic stages (floorplan annealing, routing with
    placement jitter) get a second attempt with a perturbed seed; the
    deterministic stages run once. ``T_clk`` degradation is on.
    """
    return ResilienceConfig(
        policies={
            "floorplan": StagePolicy(max_attempts=2),
            "route": StagePolicy(max_attempts=2),
        }
    )


def strict_resilience() -> ResilienceConfig:
    """No retries, no degradation — the pre-resilience behaviour."""
    return ResilienceConfig(degrade_t_clk=False)
