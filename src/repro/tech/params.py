"""Technology parameters for early interconnect planning.

The paper targets a deep-submicron process where a global wire can take
multiple clock cycles to traverse. We model the technology with a small
set of Elmore-model constants (per-unit wire resistance/capacitance,
repeater and flip-flop cells) bundled in :class:`Technology`.

Geometry note: all distances are expressed in *tile units* (one tile =
``tile_size`` millimetres); delays in nanoseconds; areas in "unit cells"
(the area of one flip-flop is ``ff_area`` unit cells).
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class Technology:
    """Electrical and geometric constants used throughout the planner.

    Attributes:
        r_wire: Wire resistance per millimetre (kilo-ohm / mm).
        c_wire: Wire capacitance per millimetre (picofarad / mm).
        repeater_delay: Intrinsic repeater delay (ns).
        r_repeater: Repeater output resistance (kilo-ohm).
        c_repeater: Repeater input capacitance (pF).
        repeater_area: Repeater area in unit cells.
        ff_delay: Flip-flop clock-to-Q plus setup overhead (ns).
        ff_area: Flip-flop area in unit cells.
        tile_size: Edge length of one routing tile (mm).
        slew_budget: Maximum tolerated transition time (ns); together
            with the wire constants it determines ``l_max``.
    """

    r_wire: float = 0.05
    c_wire: float = 0.08
    repeater_delay: float = 0.05
    r_repeater: float = 0.180
    c_repeater: float = 0.024
    repeater_area: float = 0.5
    ff_delay: float = 0.08
    ff_area: float = 4.0
    tile_size: float = 4.0
    slew_budget: float = 1.0

    @property
    def l_max_mm(self) -> float:
        """Maximum repeater-to-repeater interval (mm), from the slew budget.

        Following the signal-integrity formulation of Alpert et al. /
        Dragan et al., the transition time at the end of an unbuffered
        segment of length ``l`` grows roughly with the segment's
        intrinsic RC: ``slew ~ ln(9) * r_wire * c_wire * l^2 / 2``. The
        maximum interval is the ``l`` at which that reaches the slew
        budget.
        """
        rc = self.r_wire * self.c_wire
        return math.sqrt(2.0 * self.slew_budget / (math.log(9.0) * rc))

    @property
    def l_max_tiles(self) -> int:
        """``l_max`` expressed as a whole number of tiles (at least 1)."""
        return max(1, int(self.l_max_mm / self.tile_size))

    def wire_delay(self, length_mm: float, load_pf: float = 0.0) -> float:
        """Elmore delay (ns) of a bare wire of ``length_mm`` driving ``load_pf``."""
        r = self.r_wire * length_mm
        c = self.c_wire * length_mm
        return r * (c / 2.0 + load_pf)

    def segment_delay(self, length_mm: float) -> float:
        """Delay (ns) of one repeater plus the wire segment it drives.

        This is the fixed delay assigned to one *interconnect unit* in
        the retiming graph (Section 3.2 of the paper): intrinsic
        repeater delay, plus the repeater driving the segment's
        capacitance, plus the segment's own Elmore delay into the next
        repeater's input capacitance.
        """
        c_seg = self.c_wire * length_mm
        r_seg = self.r_wire * length_mm
        return (
            self.repeater_delay
            + self.r_repeater * (c_seg + self.c_repeater)
            + r_seg * (c_seg / 2.0 + self.c_repeater)
        )


DEFAULT_TECH = Technology()
