"""Technology constants (wire RC, repeater and flip-flop cells)."""

from repro.tech.params import DEFAULT_TECH, Technology

__all__ = ["Technology", "DEFAULT_TECH"]
