"""Timing analysis of (retimed) circuits: arrivals, slacks, critical paths.

Early planning lives and dies by where the slack went; this module
reports it. All quantities are combinational-stage values on the
expanded retiming graph: arrival times are longest register-free path
delays (endpoint included), slack is measured against a target period,
and the critical path is the argmax arrival chain.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.netlist.graph import CircuitGraph
from repro.retime.feas import arrival_times


@dataclasses.dataclass
class TimingReport:
    """Slack summary of one circuit against a target period."""

    period: float
    arrivals: Dict[str, float]
    critical_path: List[str]

    @property
    def worst_arrival(self) -> float:
        return max(self.arrivals.values()) if self.arrivals else 0.0

    @property
    def worst_slack(self) -> float:
        return self.period - self.worst_arrival

    @property
    def met(self) -> bool:
        return self.worst_slack >= -1e-9

    def slack(self, unit: str) -> float:
        return self.period - self.arrivals[unit]

    def slack_histogram(self, bins: int = 8) -> List[Tuple[float, float, int]]:
        """``(lo, hi, count)`` triples over the slack distribution."""
        slacks = [self.period - a for a in self.arrivals.values()]
        if not slacks:
            return []
        lo, hi = min(slacks), max(slacks)
        if hi - lo < 1e-12:
            return [(lo, hi, len(slacks))]
        width = (hi - lo) / bins
        counts = [0] * bins
        for s in slacks:
            idx = min(bins - 1, int((s - lo) / width))
            counts[idx] += 1
        return [
            (lo + i * width, lo + (i + 1) * width, counts[i])
            for i in range(bins)
        ]

    def format(self, top: int = 5) -> str:
        """Human-readable summary."""
        lines = [
            f"target period : {self.period:.3f}",
            f"worst arrival : {self.worst_arrival:.3f} "
            f"(slack {self.worst_slack:+.3f}, {'MET' if self.met else 'VIOLATED'})",
            f"critical path : {' -> '.join(self.critical_path)}",
            "slack histogram:",
        ]
        for lo, hi, count in self.slack_histogram():
            bar = "#" * min(count, 60)
            lines.append(f"  [{lo:+8.2f}, {hi:+8.2f}) {count:>5} {bar}")
        ordered = sorted(self.arrivals.items(), key=lambda kv: -kv[1])[:top]
        lines.append(f"{top} latest arrivals:")
        for unit, arr in ordered:
            lines.append(f"  {unit}: {arr:.3f} (slack {self.period - arr:+.3f})")
        return "\n".join(lines)


def timing_report(graph: CircuitGraph, period: float) -> TimingReport:
    """Analyse ``graph`` against ``period``."""
    arrivals = arrival_times(graph)
    critical = _critical_path(graph, arrivals)
    return TimingReport(period=period, arrivals=arrivals, critical_path=critical)


def _critical_path(
    graph: CircuitGraph, arrivals: Dict[str, float]
) -> List[str]:
    """Trace the argmax arrival back through zero-weight predecessors."""
    if not arrivals:
        return []
    end = max(arrivals, key=arrivals.get)
    path = [end]
    tol = 1e-9
    current = end
    while True:
        best_pred: Optional[str] = None
        for (u, v, _k), w in graph.in_connections(current):
            if w != 0:
                continue
            if abs(arrivals[u] + graph.delay(current) - arrivals[current]) < tol:
                best_pred = u
                break
        if best_pred is None or best_pred in path:
            break
        path.append(best_pred)
        current = best_pred
    return list(reversed(path))
