"""Markdown report generation for planning outcomes.

``write_flow_report`` turns a :class:`PlanningOutcome` into a single
Markdown document — flow summary, Table-1-style rows, per-region
flip-flop accounting, timing analysis of the final circuit — the kind
of artefact a planning tool hands to the floorplanning team.
"""

from __future__ import annotations

from typing import List

from repro.core.planner import PlanningOutcome
from repro.core.timing import timing_report
from repro.tech.params import Technology


def flow_report_markdown(outcome: PlanningOutcome) -> str:
    """Render a full Markdown report for one planning outcome."""
    lines: List[str] = [
        f"# Interconnect planning report — `{outcome.circuit}`",
        "",
        f"- planning iterations: {len(outcome.iterations)}",
        f"- converged (all local area constraints met): **{outcome.converged}**",
    ]
    dec = outcome.foa_decrease()
    if dec is not None:
        lines.append(
            f"- N_FOA decrease, LAC vs min-area (iteration 1): **{100 * dec:.0f}%**"
        )
    lines.append("")

    for it in outcome.iterations:
        lines += [
            f"## Iteration {it.index}",
            "",
            f"- periods: T_init = {it.t_init:.3f}, T_min = {it.t_min:.3f}, "
            f"T_clk = {it.t_clk:.3f}",
            f"- chip: {it.floorplan.chip_width:.0f} x "
            f"{it.floorplan.chip_height:.0f} mm "
            f"({it.grid.n_cols} x {it.grid.n_rows} tiles, "
            f"{100 * it.floorplan.dead_area / it.floorplan.chip_area:.0f}% "
            f"dead/channel area)",
            f"- expanded graph: {it.expanded.graph.num_units} units "
            f"({it.expanded.interconnect_unit_count()} interconnect units, "
            f"{it.expanded.n_connections_expanded} connections expanded)",
            "",
        ]
        if it.degraded and it.t_clk_requested is not None:
            lines += [
                f"**Degraded:** requested T_clk = {it.t_clk_requested:.3f} "
                f"was infeasible; retimed at the relaxed period "
                f"{it.t_clk:.3f}.",
                "",
            ]
        if it.infeasible:
            lines += ["**T_clk infeasible after floorplan expansion.**", ""]
            continue

        lines += [
            "| retiming | N_FOA | N_F | N_FN | N_wr | time (s) |",
            "|---|---|---|---|---|---|",
        ]
        if it.min_area:
            r = it.min_area.report
            lines.append(
                f"| min-area | {r.n_foa} | {r.n_f} | {r.n_fn} | — | "
                f"{it.min_area.seconds:.2f} |"
            )
        if it.lac:
            r = it.lac.report
            lines.append(
                f"| LAC | {r.n_foa} | {r.n_f} | {r.n_fn} | {it.lac.n_wr} | "
                f"{it.lac_seconds:.2f} |"
            )
        lines.append("")

        if it.lac:
            lines.append("### Flip-flops per region (LAC)")
            lines.append("")
            lines.append("| region | flip-flops | violation |")
            lines.append("|---|---|---|")
            ordered = sorted(
                it.lac.report.ff_count.items(), key=lambda kv: -kv[1]
            )
            for region, count in ordered[:20]:
                over = it.lac.report.violations.get(region, 0)
                lines.append(f"| `{region}` | {count} | {over or ''} |")
            if len(ordered) > 20:
                lines.append(f"| ... {len(ordered) - 20} more regions | | |")
            lines.append("")

    if outcome.ledger.records:
        lines += [
            "## Resilience ledger",
            "",
            "```",
            outcome.ledger.format(verbose=True),
            "```",
            "",
        ]

    final = outcome.final
    if not final.infeasible and final.lac is not None:
        report = timing_report(final.lac.retiming.graph, final.t_clk)
        lines += [
            "## Timing (final LAC-retimed circuit)",
            "",
            "```",
            report.format(),
            "```",
            "",
        ]
    return "\n".join(lines)


def write_flow_report(outcome: PlanningOutcome, path: str) -> None:
    """Write :func:`flow_report_markdown` output to ``path``."""
    with open(path, "w") as f:
        f.write(flow_report_markdown(outcome))
