"""Area-constraint accounting: AC(t), N_FOA, N_F, N_FN.

These are the quantities Table 1 of the paper reports:

* ``N_F`` — total number of flip-flops after retiming;
* ``N_FN`` — flip-flops that ended up *inside interconnects* (edges
  whose fanin is an interconnect unit);
* ``AC(t)`` — flip-flop area consumed in tile/region ``t`` (flip-flops
  are charged to the region of the edge's fanin unit, Eqn. (3));
* ``N_FOA`` — total count of flip-flops exceeding their region's
  remaining capacity (after repeater insertion).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

import numpy as np

from repro.netlist.graph import INTERCONNECT, CircuitGraph
from repro.retime.expand import IO_REGION
from repro.tech.params import DEFAULT_TECH, Technology
from repro.tiles.grid import TileGrid


@dataclasses.dataclass
class AreaReport:
    """Per-region flip-flop accounting for one retimed circuit."""

    ff_count: Dict[str, int]
    violations: Dict[str, int]
    n_foa: int
    n_f: int
    n_fn: int

    def violating_regions(self):
        return [t for t, v in self.violations.items() if v > 0]

    def consumption_ratio(self, grid: TileGrid, tech: Technology) -> Dict[str, float]:
        """``AC(t) / C(t)`` per region, the paper's reweighting signal.

        Regions with no remaining capacity but non-zero consumption get
        a large finite ratio so reweighting still pushes away from
        them.
        """
        ratios: Dict[str, float] = {}
        for region, count in self.ff_count.items():
            if region == IO_REGION:
                continue
            consumption = count * tech.ff_area
            cap = grid.remaining(region)
            if cap <= 1e-9:
                ratios[region] = 10.0 if consumption > 0 else 0.0
            else:
                ratios[region] = consumption / cap
        return ratios


class AreaAccountant:
    """Computes :class:`AreaReport` directly from retiming labels.

    Materialising ``graph.retimed(labels)`` just to count flip-flops
    copies the whole multigraph; LAC does that once per reweighting
    round. This accountant snapshots the per-connection structure
    (fanin index, weight, fanin region, interconnect flag) once, then
    scores any label vector with a few vectorised passes:
    ``w_r(e) = w(e) + r(v) - r(u)``.

    For any labels that yield non-negative retimed weights,
    ``accountant.report(labels, grid, tech)`` equals
    ``area_report(graph.retimed(labels), unit_region, grid, tech)``.
    """

    def __init__(self, graph: CircuitGraph, unit_region: Mapping[str, str]):
        self._order = list(graph.units())
        index = {u: i for i, u in enumerate(self._order)}
        conn_u = []
        conn_v = []
        weights = []
        region_ids = []
        interconnect = []
        regions: Dict[str, int] = {}
        for (u, v, _key), w in graph.connections():
            conn_u.append(index[u])
            conn_v.append(index[v])
            weights.append(w)
            region = unit_region.get(u, IO_REGION)
            region_ids.append(regions.setdefault(region, len(regions)))
            interconnect.append(graph.kind(u) == INTERCONNECT)
        self._conn_u = np.asarray(conn_u, dtype=np.int64)
        self._conn_v = np.asarray(conn_v, dtype=np.int64)
        self._w = np.asarray(weights, dtype=np.int64)
        self._region_id = np.asarray(region_ids, dtype=np.int64)
        self._interconnect = np.asarray(interconnect, dtype=bool)
        self._regions = list(regions)

    def report(
        self,
        labels: Mapping[str, int],
        grid: TileGrid,
        tech: Technology = DEFAULT_TECH,
    ) -> AreaReport:
        """Score ``labels`` against the grid without retiming the graph."""
        n = len(self._order)
        r = np.fromiter(
            (labels.get(u, 0) for u in self._order), dtype=np.int64, count=n
        )
        wr = self._w + r[self._conn_v] - r[self._conn_u]
        n_f = int(wr.sum())
        n_fn = int(wr[self._interconnect].sum())
        counts = np.bincount(
            self._region_id, weights=wr, minlength=len(self._regions)
        ).astype(np.int64)
        ff_count = {
            self._regions[k]: int(c) for k, c in enumerate(counts) if c > 0
        }
        violations: Dict[str, int] = {}
        n_foa = 0
        for region, count in ff_count.items():
            if region == IO_REGION:
                continue
            fits = int(max(0.0, grid.remaining(region)) // tech.ff_area)
            over = max(0, count - fits)
            if over:
                violations[region] = over
                n_foa += over
        return AreaReport(
            ff_count=ff_count,
            violations=violations,
            n_foa=n_foa,
            n_f=n_f,
            n_fn=n_fn,
        )


def area_report(
    graph: CircuitGraph,
    unit_region: Mapping[str, str],
    grid: TileGrid,
    tech: Technology = DEFAULT_TECH,
) -> AreaReport:
    """Account the flip-flops of (possibly retimed) ``graph`` to regions.

    Capacity per region is what remains after repeater insertion
    (``grid.used`` holds the repeater area), matching the paper's
    "remaining capacity after repeater insertion".
    """
    ff_count: Dict[str, int] = {}
    n_f = 0
    n_fn = 0
    for (u, _v, _k), w in graph.connections():
        if w == 0:
            continue
        n_f += w
        if graph.kind(u) == INTERCONNECT:
            n_fn += w
        region = unit_region.get(u, IO_REGION)
        ff_count[region] = ff_count.get(region, 0) + w

    violations: Dict[str, int] = {}
    n_foa = 0
    for region, count in ff_count.items():
        if region == IO_REGION:
            continue
        fits = int(max(0.0, grid.remaining(region)) // tech.ff_area)
        over = max(0, count - fits)
        if over:
            violations[region] = over
            n_foa += over
    return AreaReport(
        ff_count=ff_count,
        violations=violations,
        n_foa=n_foa,
        n_f=n_f,
        n_fn=n_fn,
    )
