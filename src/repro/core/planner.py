"""The end-to-end interconnect planner (Fig. 1 of the paper).

One *interconnect planning* iteration runs, inside physical planning:

1. partition the functional units into circuit blocks;
2. sequence-pair floorplanning;
3. tile-grid construction;
4. global routing of inter-block connections;
5. repeater planning under ``L_max``;
6. interconnect-unit expansion;
7. ``T_init`` (current period), min-period retiming (``T_min``),
   target ``T_clk = T_min + f * (T_init - T_min)`` with ``f = 0.2``;
8. retiming + flip-flop placement: classic min-area retiming (the
   paper's baseline) *and* LAC-retiming, both at ``T_clk``.

If LAC-retiming leaves area violations, a second planning iteration
expands the congested soft blocks and repeats steps 2–8 with the same
``T_clk`` (which, as the paper observes for s1269, can become
infeasible after a drastic floorplan change — that outcome is captured
rather than raised).
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Tuple

from repro.core.lac import LACResult, lac_retiming
from repro.core.metrics import AreaReport, area_report
from repro.errors import InfeasiblePeriodError, PlanningError
from repro.floorplan.plan import Floorplan, build_floorplan, expand_floorplan
from repro.netlist.graph import CircuitGraph
from repro.partition.multiway import Partition, default_block_count, partition_graph
from repro.repeater.insertion import buffer_routed_nets
from repro.retime.constraints import build_constraint_system
from repro.retime.expand import ExpandedCircuit, expand_interconnects
from repro.retime.minarea import RetimingResult, min_area_retiming
from repro.retime.minperiod import clock_period, min_period_retiming
from repro.retime.wd import WDMatrices, wd_matrices
from repro.route.router import GlobalRouter, nets_from_graph
from repro.tech.params import DEFAULT_TECH, Technology
from repro.tiles.grid import SOFT, TileGrid, build_tile_grid


@dataclasses.dataclass
class PlannerConfig:
    """Knobs for the planning flow; defaults follow the paper."""

    seed: int = 0
    n_blocks: Optional[int] = None
    whitespace: float = 0.50
    target_fraction: float = 0.2  # T_clk position between T_min and T_init
    alpha: float = 0.2
    n_max: int = 5
    max_rounds: int = 30
    prune: bool = True
    floorplan_iterations: int = 2000
    rrr_passes: int = 2
    max_units_per_connection: Optional[int] = 4
    hard_blocks: Tuple[int, ...] = ()
    expansion_factor: float = 1.4
    run_baseline: bool = True
    floorplan_backend: str = "sequence_pair"
    repeater_backend: str = "path"  # "path" (per-connection DP) | "tree"
    tech: Technology = DEFAULT_TECH


@dataclasses.dataclass
class TimedRetiming:
    """A retiming outcome plus its area report and wall-clock time."""

    result: RetimingResult
    report: AreaReport
    seconds: float


@dataclasses.dataclass
class PlanningIteration:
    """Everything produced by one interconnect-planning iteration."""

    index: int
    partition: Partition
    floorplan: Floorplan
    grid: TileGrid
    expanded: ExpandedCircuit
    t_init: float
    t_min: float
    t_clk: float
    min_area: Optional[TimedRetiming]
    lac: Optional[LACResult]
    lac_seconds: float
    infeasible: bool = False

    @property
    def n_foa_min_area(self) -> Optional[int]:
        return self.min_area.report.n_foa if self.min_area else None

    @property
    def n_foa_lac(self) -> Optional[int]:
        return self.lac.report.n_foa if self.lac else None


@dataclasses.dataclass
class PlanningOutcome:
    """Result of :func:`plan_interconnect` across planning iterations."""

    circuit: str
    config: PlannerConfig
    iterations: List[PlanningIteration]

    @property
    def first(self) -> PlanningIteration:
        return self.iterations[0]

    @property
    def final(self) -> PlanningIteration:
        return self.iterations[-1]

    @property
    def converged(self) -> bool:
        """True when the final iteration has zero area violations."""
        last = self.final
        return (not last.infeasible) and last.lac is not None and last.lac.n_foa == 0

    def foa_decrease(self) -> Optional[float]:
        """Fractional N_FOA decrease of LAC vs min-area (iteration 1)."""
        it = self.first
        if it.min_area is None or it.lac is None:
            return None
        base = it.min_area.report.n_foa
        if base == 0:
            return 0.0
        return 1.0 - it.lac.report.n_foa / base

    def report(self) -> str:
        """Human-readable summary, mirroring a Table 1 row."""
        lines = [f"interconnect planning: {self.circuit}"]
        for it in self.iterations:
            lines.append(
                f"  iteration {it.index}: T_init={it.t_init:.2f} "
                f"T_min={it.t_min:.2f} T_clk={it.t_clk:.2f}"
            )
            if it.infeasible:
                lines.append("    T_clk infeasible after floorplan expansion")
                continue
            if it.min_area:
                r = it.min_area.report
                lines.append(
                    f"    min-area: N_FOA={r.n_foa} N_F={r.n_f} N_FN={r.n_fn} "
                    f"({it.min_area.seconds:.2f}s)"
                )
            if it.lac:
                r = it.lac.report
                lines.append(
                    f"    LAC     : N_FOA={r.n_foa} N_F={r.n_f} N_FN={r.n_fn} "
                    f"N_wr={it.lac.n_wr} ({it.lac_seconds:.2f}s)"
                )
        dec = self.foa_decrease()
        if dec is not None:
            lines.append(f"  N_FOA decrease (LAC vs min-area): {100 * dec:.0f}%")
        lines.append(f"  converged: {self.converged}")
        return "\n".join(lines)


def _run_iteration(
    graph: CircuitGraph,
    partition: Partition,
    plan: Floorplan,
    config: PlannerConfig,
    index: int,
    t_clk: Optional[float] = None,
) -> PlanningIteration:
    """Steps 3-8 on a given floorplan. ``t_clk`` fixes the target period
    (used by the second iteration); otherwise it is derived."""
    grid = build_tile_grid(plan, config.tech)
    nets = nets_from_graph(graph, grid, plan, jitter_seed=config.seed)
    router = GlobalRouter(grid)
    routed = router.route(nets, rrr_passes=config.rrr_passes)
    if config.repeater_backend == "tree":
        from repro.repeater.vanginneken import buffer_routed_nets_tree

        buffered = buffer_routed_nets_tree(routed, grid, config.tech)
    elif config.repeater_backend == "path":
        buffered = buffer_routed_nets(routed, grid, config.tech)
    else:
        raise PlanningError(
            f"unknown repeater backend {config.repeater_backend!r}"
        )
    expanded = expand_interconnects(
        graph,
        buffered,
        grid,
        plan,
        jitter_seed=config.seed,
        max_units_per_connection=config.max_units_per_connection,
    )

    wd = wd_matrices(expanded.graph)
    t_init = clock_period(expanded.graph, wd)
    t_min, _ = min_period_retiming(expanded.graph, wd)
    if t_clk is None:
        t_clk = t_min + config.target_fraction * (t_init - t_min)

    min_area_timed: Optional[TimedRetiming] = None
    lac_result: Optional[LACResult] = None
    lac_seconds = 0.0
    infeasible = False
    try:
        # One constraint system serves both retimings: they target the
        # same period, and constraint generation dominates run time
        # (the property the paper leans on in Section 4.2).
        system = build_constraint_system(
            expanded.graph, wd, t_clk, prune=config.prune
        )
        if config.run_baseline:
            start = time.perf_counter()
            base = min_area_retiming(expanded.graph, t_clk, wd=wd, system=system)
            elapsed = time.perf_counter() - start
            base_report = area_report(
                base.graph, expanded.unit_region, grid, config.tech
            )
            min_area_timed = TimedRetiming(base, base_report, elapsed)

        start = time.perf_counter()
        lac_result = lac_retiming(
            expanded.graph,
            expanded.unit_region,
            grid,
            t_clk,
            tech=config.tech,
            alpha=config.alpha,
            n_max=config.n_max,
            max_rounds=config.max_rounds,
            wd=wd,
            system=system,
        )
        lac_seconds = time.perf_counter() - start
    except InfeasiblePeriodError:
        infeasible = True

    return PlanningIteration(
        index=index,
        partition=partition,
        floorplan=plan,
        grid=grid,
        expanded=expanded,
        t_init=t_init,
        t_min=t_min,
        t_clk=t_clk,
        min_area=min_area_timed,
        lac=lac_result,
        lac_seconds=lac_seconds,
        infeasible=infeasible,
    )


def _congested_blocks(iteration: PlanningIteration) -> List[str]:
    """Soft blocks to expand before the next planning iteration.

    Violations in soft-block regions name the block directly;
    violations in channel or hard-block tiles expand the nearest soft
    block (extra block slack relieves the surrounding channels too).
    """
    grid = iteration.grid
    plan = iteration.floorplan
    blocks = set()
    if iteration.lac is None:
        return []
    for region in iteration.lac.report.violating_regions():
        if grid.kind.get(region) == SOFT:
            blocks.add(region[len("blk_") :])
        else:
            cells = [c for c, t in grid.region_of_cell.items() if t == region]
            if not cells:
                continue
            cx, cy = grid.center_of_cell(cells[0])
            nearest = min(
                plan.placements.values(),
                key=lambda p: abs(p.center[0] - cx) + abs(p.center[1] - cy),
            )
            if not plan.blocks[nearest.name].hard:
                blocks.add(nearest.name)
    return sorted(blocks)


def plan_interconnect(
    graph: CircuitGraph,
    config: Optional[PlannerConfig] = None,
    max_iterations: int = 2,
    **overrides,
) -> PlanningOutcome:
    """Run the full interconnect-planning flow on a circuit.

    Keyword overrides are applied on top of ``config`` (or the default
    config), e.g. ``plan_interconnect(g, seed=3, alpha=0.3)``.
    """
    if config is None:
        config = PlannerConfig()
    if overrides:
        config = dataclasses.replace(config, **overrides)
    graph.validate()

    hosts = set(graph.host_units())
    n_units = graph.num_units - len(hosts)
    n_blocks = config.n_blocks or default_block_count(n_units)
    partition = partition_graph(graph, n_blocks, seed=config.seed)
    plan = build_floorplan(
        graph,
        partition,
        seed=config.seed,
        hard_blocks=config.hard_blocks,
        whitespace=config.whitespace,
        iterations=config.floorplan_iterations,
        backend=config.floorplan_backend,
    )

    iterations: List[PlanningIteration] = []
    first = _run_iteration(graph, partition, plan, config, index=1)
    iterations.append(first)

    current = first
    while (
        len(iterations) < max_iterations
        and not current.infeasible
        and current.lac is not None
        and current.lac.n_foa > 0
    ):
        congested = _congested_blocks(current)
        if not congested:
            break
        plan = expand_floorplan(
            current.floorplan,
            graph,
            congested,
            factor=config.expansion_factor,
            seed=config.seed,
            iterations=config.floorplan_iterations,
        )
        current = _run_iteration(
            graph,
            partition,
            plan,
            config,
            index=len(iterations) + 1,
            t_clk=first.t_clk,
        )
        iterations.append(current)

    return PlanningOutcome(circuit=graph.name, config=config, iterations=iterations)
