"""The end-to-end interconnect planner (Fig. 1 of the paper).

One *interconnect planning* iteration runs, inside physical planning:

1. partition the functional units into circuit blocks;
2. sequence-pair floorplanning;
3. tile-grid construction;
4. global routing of inter-block connections;
5. repeater planning under ``L_max``;
6. interconnect-unit expansion;
7. ``T_init`` (current period), min-period retiming (``T_min``),
   target ``T_clk = T_min + f * (T_init - T_min)`` with ``f = 0.2``;
8. retiming + flip-flop placement: classic min-area retiming (the
   paper's baseline) *and* LAC-retiming, both at ``T_clk``.

If LAC-retiming leaves area violations, a second planning iteration
expands the congested soft blocks and repeats steps 2–8 with the same
``T_clk`` (which, as the paper observes for s1269, can become
infeasible after a drastic floorplan change).

Every stage executes through the :mod:`repro.resilience` layer: a
:class:`~repro.resilience.runner.StageRunner` applies per-stage
policies (bounded retries with seed perturbation for the stochastic
stages, optional wall-clock deadlines, fallback chains such as the
``tree`` repeater backend falling back to ``path``), and an infeasible
``T_clk`` degrades gracefully — the period is relaxed toward
``T_init`` and the iteration is marked ``degraded`` instead of being
abandoned. The full attempt history lands in the outcome's
:class:`~repro.resilience.ledger.RunLedger`.

With a :class:`~repro.resilience.checkpoint.CheckpointManager`
attached, every successful stage result is additionally persisted at
the stage boundary, so a killed run resumed with ``resume=True``
restores the completed prefix — including mid-iteration state such as
the retiming labels of a finished ``retime`` stage — and recomputes
only what was in flight; the flow is deterministic given its seeds, so
the resumed outcome is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.compile import CACHE_MODES, CompileCache
from repro.core.lac import LACResult, lac_retiming
from repro.core.metrics import AreaReport, area_report
from repro.errors import InfeasiblePeriodError, PlanningError
from repro.floorplan.plan import Floorplan, build_floorplan, expand_floorplan
from repro.netlist.graph import CircuitGraph
from repro.obs import NOOP_TRACER, Tracer
from repro.obs.export import write_trace
from repro.obs.metrics import MetricsRegistry, write_metrics, write_prometheus
from repro.obs.monitor import ResourceSampler
from repro.obs.progress import open_progress
from repro.partition.multiway import Partition, default_block_count, partition_graph
from repro.repeater.insertion import buffer_routed_nets
from repro.resilience.checkpoint import (
    OUTCOME_KEY as CKPT_OUTCOME_KEY,
    run_fingerprint,
)
from repro.resilience.degrade import find_relaxed_period
from repro.resilience.faults import FaultInjector
from repro.resilience.ledger import RunLedger
from repro.resilience.policy import ResilienceConfig, default_resilience
from repro.resilience.runner import StageRunner, perturbed_seed
from repro.retime.constraints import build_constraint_system
from repro.retime.expand import ExpandedCircuit, expand_interconnects
from repro.retime.minarea import RetimingResult, min_area_retiming
from repro.retime.minperiod import PROBERS, min_period_retiming
from repro.route.router import GlobalRouter, nets_from_graph
from repro.tech.params import DEFAULT_TECH, Technology
from repro.tiles.grid import SOFT, TileGrid, build_tile_grid

log = logging.getLogger(__name__)

#: Legal backend names, checked up-front by config validation.
FLOORPLAN_BACKENDS = ("sequence_pair", "slicing")
REPEATER_BACKENDS = ("path", "tree")


@dataclasses.dataclass
class PlannerConfig:
    """Knobs for the planning flow; defaults follow the paper."""

    seed: int = 0
    n_blocks: Optional[int] = None
    whitespace: float = 0.50
    target_fraction: float = 0.2  # T_clk position between T_min and T_init
    alpha: float = 0.2
    n_max: int = 5
    max_rounds: int = 30
    prune: bool = True
    floorplan_iterations: int = 2000
    anneal_replicas: int = 1  # parallel-tempered multi-start replicas
    anneal_jobs: int = 1  # worker processes for replicas > 1
    rrr_passes: int = 2
    max_units_per_connection: Optional[int] = 4
    hard_blocks: Tuple[int, ...] = ()
    expansion_factor: float = 1.4
    run_baseline: bool = True
    floorplan_backend: str = "sequence_pair"
    repeater_backend: str = "path"  # "path" (per-connection DP) | "tree"
    tech: Technology = DEFAULT_TECH
    resilience: Optional[ResilienceConfig] = None  # None -> defaults
    lac_incremental: bool = True  # warm-started LAC solver (False = cold)
    lac_solver_engine: str = "auto"  # "auto" | "highs" | "ssp"
    min_period_prober: str = "auto"  # "auto" | "feas" | "bellman-ford"
    trace_path: Optional[str] = None  # write a repro-trace/1 JSONL here
    metrics_path: Optional[str] = None  # repro-metrics/1 JSONL (+ .prom sibling)
    progress_path: Optional[str] = None  # repro-events/1 live stream ("-" = TTY)
    monitor: bool = True  # sample RSS/CPU/GC while instrumented
    monitor_interval: float = 0.05  # seconds between resource samples
    compile_cache_dir: Optional[str] = None  # compiled-circuit disk cache root
    compile_cache: str = "auto"  # "auto" | "off" | "readonly"


def validate_planner_config(config: PlannerConfig) -> None:
    """Reject bad configs up front, naming the offending field.

    Raises:
        PlanningError: A field is out of range or names an unknown
            backend — better than failing deep inside a stage.
    """
    if config.whitespace < 0:
        raise PlanningError(
            f"PlannerConfig.whitespace must be >= 0, got {config.whitespace}"
        )
    if config.expansion_factor <= 1.0:
        raise PlanningError(
            "PlannerConfig.expansion_factor must be > 1.0, got "
            f"{config.expansion_factor}"
        )
    if config.anneal_replicas < 1:
        raise PlanningError(
            "PlannerConfig.anneal_replicas must be >= 1, got "
            f"{config.anneal_replicas}"
        )
    if config.anneal_jobs < 1:
        raise PlanningError(
            f"PlannerConfig.anneal_jobs must be >= 1, got {config.anneal_jobs}"
        )
    if not 0.0 <= config.target_fraction <= 1.0:
        raise PlanningError(
            "PlannerConfig.target_fraction must be in [0, 1], got "
            f"{config.target_fraction}"
        )
    if config.floorplan_backend not in FLOORPLAN_BACKENDS:
        raise PlanningError(
            "PlannerConfig.floorplan_backend: unknown floorplan backend "
            f"{config.floorplan_backend!r} (expected one of "
            f"{', '.join(FLOORPLAN_BACKENDS)})"
        )
    if config.repeater_backend not in REPEATER_BACKENDS:
        raise PlanningError(
            "PlannerConfig.repeater_backend: unknown repeater backend "
            f"{config.repeater_backend!r} (expected one of "
            f"{', '.join(REPEATER_BACKENDS)})"
        )
    if config.n_max < 1:
        raise PlanningError(
            f"PlannerConfig.n_max must be >= 1, got {config.n_max}"
        )
    if config.max_rounds < 1:
        raise PlanningError(
            f"PlannerConfig.max_rounds must be >= 1, got {config.max_rounds}"
        )
    if config.lac_solver_engine not in ("auto", "highs", "ssp"):
        raise PlanningError(
            "PlannerConfig.lac_solver_engine must be 'auto', 'highs' or "
            f"'ssp', got {config.lac_solver_engine!r}"
        )
    if config.min_period_prober not in PROBERS:
        raise PlanningError(
            "PlannerConfig.min_period_prober must be one of "
            f"{', '.join(PROBERS)}, got {config.min_period_prober!r}"
        )
    if config.compile_cache not in CACHE_MODES:
        raise PlanningError(
            "PlannerConfig.compile_cache must be one of "
            f"{', '.join(CACHE_MODES)}, got {config.compile_cache!r}"
        )
    if config.monitor_interval <= 0:
        raise PlanningError(
            "PlannerConfig.monitor_interval must be > 0, got "
            f"{config.monitor_interval}"
        )


@dataclasses.dataclass
class TimedRetiming:
    """A retiming outcome plus its area report and wall-clock time."""

    result: RetimingResult
    report: AreaReport
    seconds: float


@dataclasses.dataclass
class PlanningIteration:
    """Everything produced by one interconnect-planning iteration.

    ``t_clk`` is the period actually retimed for. When the requested
    period proved infeasible and degradation relaxed it, ``degraded``
    is True and ``t_clk_requested`` keeps the original target;
    ``infeasible`` is reserved for the case where no relaxation was
    attempted (degradation disabled) or none succeeded.

    The last four fields are audit snapshots for :mod:`repro.verify`:
    the per-region area the repeater stage reserved (``grid.used`` as
    of that stage — the area checker trusts this snapshot, and the
    repeater checker holds the live grid to it), the repeater count,
    and the router's per-cell usage map plus its congestion summary.
    They default to ``None`` so outcomes restored from pre-audit
    checkpoints still load (their certificates come back *skipped*).
    """

    index: int
    partition: Partition
    floorplan: Floorplan
    grid: TileGrid
    expanded: ExpandedCircuit
    t_init: float
    t_min: float
    t_clk: float
    min_area: Optional[TimedRetiming]
    lac: Optional[LACResult]
    lac_seconds: float
    constraints_seconds: float = 0.0
    infeasible: bool = False
    degraded: bool = False
    t_clk_requested: Optional[float] = None
    repeater_used: Optional[Dict[str, float]] = None
    n_repeaters: Optional[int] = None
    route_usage: Optional[Dict[Tuple[int, int], int]] = None
    route_congestion: Optional[Dict[str, float]] = None

    @property
    def n_foa_min_area(self) -> Optional[int]:
        return self.min_area.report.n_foa if self.min_area else None

    @property
    def n_foa_lac(self) -> Optional[int]:
        return self.lac.report.n_foa if self.lac else None


@dataclasses.dataclass
class PlanningOutcome:
    """Result of :func:`plan_interconnect` across planning iterations."""

    circuit: str
    config: PlannerConfig
    iterations: List[PlanningIteration]
    ledger: RunLedger = dataclasses.field(default_factory=RunLedger)
    #: Attached by ``plan_interconnect(..., verify=True)`` — a
    #: :class:`repro.verify.certificate.VerificationReport`. Read it
    #: with ``getattr(outcome, "verification", None)``: outcomes
    #: unpickled from older checkpoints predate the field.
    verification: Optional[object] = None

    @property
    def first(self) -> PlanningIteration:
        return self.iterations[0]

    @property
    def final(self) -> PlanningIteration:
        return self.iterations[-1]

    @property
    def converged(self) -> bool:
        """True when the final iteration has zero area violations."""
        last = self.final
        return (not last.infeasible) and last.lac is not None and last.lac.n_foa == 0

    @property
    def degraded(self) -> bool:
        """True when any iteration ran at a relaxed (degraded) period."""
        return any(it.degraded for it in self.iterations)

    def foa_decrease(self) -> Optional[float]:
        """Fractional N_FOA decrease of LAC vs min-area (iteration 1)."""
        it = self.first
        if it.min_area is None or it.lac is None:
            return None
        base = it.min_area.report.n_foa
        if base == 0:
            return 0.0
        return 1.0 - it.lac.report.n_foa / base

    def report(self) -> str:
        """Human-readable summary, mirroring a Table 1 row."""
        lines = [f"interconnect planning: {self.circuit}"]
        for it in self.iterations:
            lines.append(
                f"  iteration {it.index}: T_init={it.t_init:.2f} "
                f"T_min={it.t_min:.2f} T_clk={it.t_clk:.2f}"
            )
            if it.degraded and it.t_clk_requested is not None:
                lines.append(
                    f"    degraded: requested T_clk={it.t_clk_requested:.2f} "
                    f"infeasible, achieved {it.t_clk:.2f}"
                )
            if it.infeasible:
                lines.append("    T_clk infeasible after floorplan expansion")
                continue
            if it.min_area:
                r = it.min_area.report
                lines.append(
                    f"    min-area: N_FOA={r.n_foa} N_F={r.n_f} N_FN={r.n_fn} "
                    f"({it.min_area.seconds:.2f}s)"
                )
            if it.lac:
                r = it.lac.report
                lines.append(
                    f"    LAC     : N_FOA={r.n_foa} N_F={r.n_f} N_FN={r.n_fn} "
                    f"N_wr={it.lac.n_wr} ({it.lac_seconds:.2f}s)"
                )
        dec = self.foa_decrease()
        if dec is not None:
            lines.append(f"  N_FOA decrease (LAC vs min-area): {100 * dec:.0f}%")
        lines.append(f"  converged: {self.converged}")
        verification = getattr(self, "verification", None)
        if verification is not None:
            lines.append(f"  {verification.summary()}")
        if self.ledger.records:
            lines.append("  " + self.ledger.format().replace("\n", "\n  "))
        return "\n".join(lines)


@dataclasses.dataclass
class _RetimeOutcome:
    """What the retime stage hands back to the iteration assembler."""

    min_area: Optional[TimedRetiming]
    lac: Optional[LACResult]
    lac_seconds: float
    t_clk: float
    constraints_seconds: float = 0.0
    infeasible: bool = False
    degraded: bool = False


def _run_iteration(
    graph: CircuitGraph,
    partition: Partition,
    plan: Floorplan,
    config: PlannerConfig,
    index: int,
    t_clk: Optional[float] = None,
    runner: Optional[StageRunner] = None,
    cache: Optional[CompileCache] = None,
) -> PlanningIteration:
    """Steps 3-8 on a given floorplan. ``t_clk`` fixes the target period
    (used by the second iteration); otherwise it is derived.

    Without an explicit ``runner`` the stages run strictly — single
    attempts, no degradation — which is the historical behaviour.
    """
    if runner is None:
        runner = StageRunner(ResilienceConfig(degrade_t_clk=False))
    if cache is None:
        cache = CompileCache(config.compile_cache_dir, mode=config.compile_cache)
    tracer = runner.tracer
    outer_scope = runner.scope
    runner.scope = f"iteration {index}"
    try:
        with tracer.span("iteration", index=index) as span:
            iteration = _run_iteration_stages(
                graph, partition, plan, config, index, t_clk, runner, cache
            )
            span.set(
                t_init=iteration.t_init,
                t_min=iteration.t_min,
                t_clk=iteration.t_clk,
                infeasible=iteration.infeasible,
                degraded=iteration.degraded,
                n_foa_lac=iteration.n_foa_lac,
            )
            return iteration
    finally:
        runner.scope = outer_scope


def _run_iteration_stages(
    graph: CircuitGraph,
    partition: Partition,
    plan: Floorplan,
    config: PlannerConfig,
    index: int,
    t_clk: Optional[float],
    runner: StageRunner,
    cache: CompileCache,
) -> PlanningIteration:
    tracer = runner.tracer
    grid = runner.run("tiles", lambda _a: build_tile_grid(plan, config.tech))

    def _route(attempt: int):
        # Retries re-jitter the pin placement seed: a marginal routing
        # instance often clears with a slightly different jitter.
        nets = nets_from_graph(
            graph, grid, plan, jitter_seed=perturbed_seed(config.seed, attempt)
        )
        router = GlobalRouter(grid)
        routed = router.route(
            nets, rrr_passes=config.rrr_passes, tracer=tracer
        )
        # The usage map and congestion summary ride along in the stage
        # value so the verification layer can re-count them later (and
        # a resumed run restores them with the routing).
        return routed, dict(router.usage), router.congestion_summary()

    route_value = runner.run("route", _route)
    if isinstance(route_value, tuple) and len(route_value) == 3:
        routed, route_usage, route_congestion = route_value
    else:  # stage value from a pre-audit checkpoint
        routed, route_usage, route_congestion = route_value, None, None

    def _annotate_repeaters(buffered):
        n_repeaters = sum(c.n_repeaters for c in buffered.values())
        tracer.current.set(
            n_connections=len(buffered), n_repeaters=n_repeaters
        )
        # Both backends reserve repeater area from the grid in place,
        # and downstream area reports read that reservation. The grid
        # rides along in the stage value so a checkpoint of this stage
        # captures the mutation — a resumed run that restores the
        # repeater stage restores the post-reservation grid with it.
        # The post-reservation snapshot is the area the verification
        # layer audits the live grid against.
        return buffered, grid, grid.snapshot_usage(), n_repeaters

    if config.repeater_backend == "tree":
        from repro.repeater.vanginneken import buffer_routed_nets_tree

        repeater_value = runner.run(
            "repeater",
            lambda _a: _annotate_repeaters(
                buffer_routed_nets_tree(routed, grid, config.tech)
            ),
            fallbacks=[
                (
                    "path",
                    lambda _a: _annotate_repeaters(
                        buffer_routed_nets(routed, grid, config.tech)
                    ),
                )
            ],
        )
    elif config.repeater_backend == "path":
        repeater_value = runner.run(
            "repeater",
            lambda _a: _annotate_repeaters(
                buffer_routed_nets(routed, grid, config.tech)
            ),
        )
    else:
        raise PlanningError(
            f"unknown repeater backend {config.repeater_backend!r}"
        )
    if len(repeater_value) == 4:
        buffered, grid, repeater_used, n_repeaters = repeater_value
    else:  # stage value from a pre-audit checkpoint
        (buffered, grid), repeater_used, n_repeaters = repeater_value, None, None

    def _expand(_a):
        expanded = expand_interconnects(
            graph,
            buffered,
            grid,
            plan,
            jitter_seed=config.seed,
            max_units_per_connection=config.max_units_per_connection,
        )
        tracer.current.set(n_units=expanded.graph.num_units)
        return expanded

    expanded = runner.run("expand", _expand)

    def _compile(_a):
        # The whole pure front half of the solve — W/D, candidate
        # periods, FEAS arrays — keyed by the expanded graph's content.
        artifact, hit = cache.get_or_compile(
            expanded.graph,
            tech=config.tech,
            prune=config.prune,
            prober=config.min_period_prober,
        )
        tracer.current.set(
            cache="hit" if hit else "miss",
            fingerprint=artifact.fingerprint[:16],
            n_candidates=len(artifact.candidates),
        )
        tracer.metrics.counter(
            "compile_cache_total", result="hit" if hit else "miss"
        ).inc()
        tracer.metrics.gauge("compile_candidates").set(len(artifact.candidates))
        return artifact

    compiled = runner.run("compile", _compile)
    wd = compiled.wd
    t_init = compiled.t_init
    t_min, _ = runner.run(
        "min_period",
        lambda _a: min_period_retiming(
            expanded.graph,
            wd,
            prober=config.min_period_prober,
            tracer=tracer,
            compiled=compiled,
        ),
    )
    requested = t_clk
    if t_clk is None:
        t_clk = t_min + config.target_fraction * (t_init - t_min)

    def _retime_at(period: float, prune: bool):
        # One constraint system serves both retimings: they target the
        # same period, and constraint generation dominates run time
        # (the property the paper leans on in Section 4.2).
        start = time.perf_counter()
        with tracer.span("retime/constraints", period=period, prune=prune) as sp:
            system = build_constraint_system(
                expanded.graph, wd, period, prune=prune, compiled=compiled
            )
            sp.set(n_constraints=len(system.constraints))
        constraints_seconds = time.perf_counter() - start
        min_area_timed: Optional[TimedRetiming] = None
        if config.run_baseline:
            start = time.perf_counter()
            with tracer.span("retime/min_area", period=period) as sp:
                base = min_area_retiming(
                    expanded.graph, period, wd=wd, system=system
                )
            elapsed = time.perf_counter() - start
            base_report = area_report(
                base.graph, expanded.unit_region, grid, config.tech
            )
            sp.set(n_foa=base_report.n_foa, n_f=base_report.n_f)
            min_area_timed = TimedRetiming(base, base_report, elapsed)

        start = time.perf_counter()
        with tracer.span("retime/lac", period=period) as sp:
            lac_result = lac_retiming(
                expanded.graph,
                expanded.unit_region,
                grid,
                period,
                tech=config.tech,
                alpha=config.alpha,
                n_max=config.n_max,
                max_rounds=config.max_rounds,
                wd=wd,
                system=system,
                incremental=config.lac_incremental,
                solver_engine=config.lac_solver_engine,
                tracer=tracer,
                compiled=compiled,
            )
            sp.set(
                n_wr=lac_result.n_wr,
                n_foa=lac_result.report.n_foa,
                n_f=lac_result.report.n_f,
            )
        lac_seconds = time.perf_counter() - start
        return min_area_timed, lac_result, lac_seconds, constraints_seconds

    def _retime(_attempt: int, prune: bool) -> _RetimeOutcome:
        try:
            ma, lac, lac_s, cons_s = _retime_at(t_clk, prune)
            return _RetimeOutcome(ma, lac, lac_s, t_clk, cons_s)
        except InfeasiblePeriodError:
            if not runner.config.degrade_t_clk:
                return _RetimeOutcome(None, None, 0.0, t_clk, infeasible=True)
            relaxed = find_relaxed_period(expanded.graph, t_clk, t_init, wd=wd)
            if relaxed is None:
                log.warning(
                    "retime: T_clk=%.3f infeasible, no relaxed period below "
                    "T_init=%.3f",
                    t_clk,
                    t_init,
                )
                runner.note(
                    f"retime: T_clk={t_clk:.3f} infeasible and no relaxed "
                    f"period found below T_init={t_init:.3f}"
                )
                return _RetimeOutcome(None, None, 0.0, t_clk, infeasible=True)
            log.warning(
                "retime: T_clk=%.3f infeasible; degraded to %.3f", t_clk, relaxed
            )
            runner.note(
                f"retime: T_clk={t_clk:.3f} infeasible; degraded to "
                f"{relaxed:.3f} (T_init={t_init:.3f})"
            )
            ma, lac, lac_s, cons_s = _retime_at(relaxed, prune)
            return _RetimeOutcome(ma, lac, lac_s, relaxed, cons_s, degraded=True)

    # Constraint pruning, if it ever produces an unsolvable reduced
    # system, falls back to the unpruned (sound but slower) system.
    fallbacks = (
        [("unpruned", lambda a: _retime(a, prune=False))] if config.prune else []
    )
    retimed = runner.run(
        "retime",
        lambda a: _retime(a, prune=config.prune),
        fallbacks=fallbacks,
    )
    # Persist whatever the solve added to the artifact (pruned pair
    # sets, the min-period witness) so the next identical run replays
    # the solve front half straight from disk.
    cache.save(compiled)

    return PlanningIteration(
        index=index,
        partition=partition,
        floorplan=plan,
        grid=grid,
        expanded=expanded,
        t_init=t_init,
        t_min=t_min,
        t_clk=retimed.t_clk,
        min_area=retimed.min_area,
        lac=retimed.lac,
        lac_seconds=retimed.lac_seconds,
        constraints_seconds=retimed.constraints_seconds,
        infeasible=retimed.infeasible,
        degraded=retimed.degraded,
        t_clk_requested=(
            (requested if requested is not None else t_clk)
            if retimed.degraded
            else None
        ),
        repeater_used=repeater_used,
        n_repeaters=n_repeaters,
        route_usage=route_usage,
        route_congestion=route_congestion,
    )


def _congested_blocks(iteration: PlanningIteration) -> List[str]:
    """Soft blocks to expand before the next planning iteration.

    Violations in soft-block regions name the block directly;
    violations in channel or hard-block tiles expand the nearest soft
    block (extra block slack relieves the surrounding channels too).
    When every violating region sits next to hard blocks only, there
    is nothing to expand and the list is empty.
    """
    grid = iteration.grid
    plan = iteration.floorplan
    blocks = set()
    if iteration.lac is None:
        return []
    for region in iteration.lac.report.violating_regions():
        if grid.kind.get(region) == SOFT:
            blocks.add(region[len("blk_") :])
        else:
            cells = [c for c, t in grid.region_of_cell.items() if t == region]
            if not cells:
                continue
            cx, cy = grid.center_of_cell(cells[0])
            nearest = min(
                plan.placements.values(),
                key=lambda p: abs(p.center[0] - cx) + abs(p.center[1] - cy),
            )
            if not plan.blocks[nearest.name].hard:
                blocks.add(nearest.name)
    return sorted(blocks)


def plan_interconnect(
    graph: CircuitGraph,
    config: Optional[PlannerConfig] = None,
    max_iterations: int = 2,
    faults: Optional[FaultInjector] = None,
    perf=None,
    tracer=None,
    checkpoint=None,
    verify: bool = False,
    compile_cache: Optional[CompileCache] = None,
    metrics=None,
    progress=None,
    **overrides,
) -> PlanningOutcome:
    """Run the full interconnect-planning flow on a circuit.

    Keyword overrides are applied on top of ``config`` (or the default
    config), e.g. ``plan_interconnect(g, seed=3, alpha=0.3)``.

    ``compile_cache`` (a :class:`repro.compile.CompileCache`) serves
    and stores the per-iteration compiled-circuit artifacts; when not
    given, one is created from ``config.compile_cache_dir`` /
    ``config.compile_cache`` (with no directory configured that is a
    process-local LRU only). Passing a mode string instead
    (``compile_cache="off"``) sets the config field, mirroring the
    other keyword overrides. The cache affects wall-clock, never
    results: artifacts are content-addressed over the expanded graph,
    tech and compile-relevant config, so a hit replays exactly what a
    fresh compile+search would produce.

    With ``verify=True`` the finished outcome (fresh *or* restored
    from a checkpoint) is certified end-to-end by the independent
    audit layer (:func:`repro.verify.verify_outcome`) and the
    resulting report is attached as ``outcome.verification``; the
    caller decides what a failed certificate means (the CLI exits 5).

    Stages run under ``config.resilience`` (the default posture gives
    the stochastic stages a retry and degrades infeasible periods);
    ``faults`` optionally injects deterministic failures/delays for
    testing the recovery paths.

    Durability: ``checkpoint`` (a
    :class:`~repro.resilience.checkpoint.CheckpointManager`) persists
    every successful stage result — and the finished outcome — to
    disk; a manager created with ``resume=True`` restores them, so an
    interrupted run picks up at the last completed stage and a
    finished run returns its outcome without recomputing anything.
    The manager is bound here to the circuit and the run fingerprint
    (graph + config + ``max_iterations``), so checkpoints from a
    different run can never be resumed silently.

    Observability: ``tracer`` (a :class:`repro.obs.Tracer`) receives
    the run's span tree — stages, iterations, LAC rounds, FEAS probes.
    When ``config.trace_path`` is set the spans are also written there
    as ``repro-trace/1`` JSONL (on failure too, for post-mortems).
    ``perf``, if given, is a :class:`repro.perf.PerfRecorder` whose
    stage table is derived from those same spans. ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`, or one created when
    ``config.metrics_path`` is set) is installed as ``tracer.metrics``
    so every stage and solver meters into it; the registry is written
    as ``repro-metrics/1`` JSONL to ``config.metrics_path`` plus a
    Prometheus-text ``.prom`` sibling. ``progress`` (a
    :class:`repro.obs.ProgressStream` / ``HumanProgress``, or one
    opened from ``config.progress_path``) streams span open/close live
    as ``repro-events/1``. Whenever any instrumentation is on and
    ``config.monitor`` is true, a background
    :class:`repro.obs.ResourceSampler` attributes peak-RSS / CPU / GC
    deltas to stage spans. With none of these requested, the flow runs
    on the no-op tracer and pays ~nothing.
    """
    if config is None:
        config = PlannerConfig()
    if isinstance(compile_cache, str):
        # plan_interconnect(g, compile_cache="off") reads as a config
        # override, like every other keyword; honour that.
        overrides = {**overrides, "compile_cache": compile_cache}
        compile_cache = None
    if overrides:
        config = dataclasses.replace(config, **overrides)
    validate_planner_config(config)
    graph.validate()

    trace_path = config.trace_path
    instrumented = bool(
        trace_path
        or config.metrics_path
        or config.progress_path
        or perf is not None
        or metrics is not None
        or progress is not None
    )
    if tracer is None:
        # perf/metrics/progress all derive from spans, so any of them
        # needs a real tracer even when no trace file was requested.
        if instrumented:
            # wall_start anchors the monotonic span clock to the epoch
            # so traces can be correlated across runs and with logs.
            tracer = Tracer(
                meta={
                    "circuit": graph.name,
                    "seed": config.seed,
                    "wall_start": round(time.time(), 6),
                }
            )
        else:
            tracer = NOOP_TRACER

    if metrics is None and config.metrics_path:
        metrics = MetricsRegistry(
            meta={"circuit": graph.name, "seed": config.seed}
        )
    if metrics is not None and tracer.enabled:
        tracer.metrics = metrics

    # The monitor listener attaches before the progress listener so
    # progress events for closing spans already carry resource stamps.
    sampler = None
    if tracer.enabled and config.monitor:
        sampler = ResourceSampler(
            interval=config.monitor_interval, metrics=metrics
        )
        tracer.add_listener(sampler)
        sampler.start()

    own_progress = False
    if progress is None and config.progress_path:
        progress = open_progress(config.progress_path, metrics=metrics)
        own_progress = True
    if progress is not None and tracer.enabled:
        progress.attach(tracer)

    if checkpoint is not None:
        checkpoint.bind(
            graph.name, run_fingerprint(graph, config, max_iterations)
        )
        if checkpoint.faults is None:
            checkpoint.faults = faults

    resilience = config.resilience or default_resilience()
    ledger = RunLedger()
    runner = StageRunner(
        resilience, ledger, faults=faults, tracer=tracer, checkpoint=checkpoint
    )
    if compile_cache is None:
        compile_cache = CompileCache(
            config.compile_cache_dir, mode=config.compile_cache
        )

    hosts = set(graph.host_units())
    n_units = graph.num_units - len(hosts)
    n_blocks = config.n_blocks or default_block_count(n_units)
    log.info(
        "planning %s: %d units into %d blocks (seed %d)",
        graph.name,
        n_units,
        n_blocks,
        config.seed,
    )

    try:
        with tracer.span(
            "plan",
            circuit=graph.name,
            seed=config.seed,
            n_blocks=n_blocks,
            max_iterations=max_iterations,
        ) as plan_span:
            outcome = None
            if checkpoint is not None:
                outcome = checkpoint.restore_outcome()
                if outcome is not None:
                    log.info(
                        "planning %s: completed outcome restored from "
                        "checkpoint",
                        graph.name,
                    )
                    plan_span.set(resumed=True)
                    plan_span.event(
                        "resumed_from", checkpoint=CKPT_OUTCOME_KEY
                    )
            if outcome is None:
                outcome = _plan_stages(
                    graph,
                    config,
                    max_iterations,
                    runner,
                    n_blocks,
                    ledger,
                    compile_cache,
                )
                if checkpoint is not None:
                    checkpoint.commit_outcome(outcome)
            plan_span.set(
                converged=outcome.converged,
                degraded=outcome.degraded,
                iterations=len(outcome.iterations),
            )
            if verify:
                from repro.verify import verify_outcome

                outcome.verification = verify_outcome(outcome, tracer=tracer)
                plan_span.set(
                    verification_ok=outcome.verification.ok,
                    verification_failed=list(
                        outcome.verification.failed_checkers()
                    ),
                )
    finally:
        # Written on failure too: a trace of a crashed run is exactly
        # what the post-mortem needs. Monitor stops first so its final
        # sample lands, and a progress stream this call opened gets its
        # terminal run_end line; a caller-owned stream (table1 sharing
        # one across circuits) is only detached.
        if sampler is not None:
            sampler.stop()
            tracer.remove_listener(sampler)
        if progress is not None:
            if own_progress:
                progress.close(spans=len(tracer.spans))
            else:
                progress.detach()
        if trace_path:
            write_trace(tracer, trace_path)
        if metrics is not None and config.metrics_path:
            write_metrics(metrics, config.metrics_path)
            write_prometheus(
                metrics, Path(config.metrics_path).with_suffix(".prom")
            )
    log.info(
        "planning %s done: converged=%s, %d iteration(s)",
        graph.name,
        outcome.converged,
        len(outcome.iterations),
    )
    if perf is not None:
        perf.ingest_spans(tracer.spans)
    return outcome


def _plan_stages(
    graph: CircuitGraph,
    config: PlannerConfig,
    max_iterations: int,
    runner: StageRunner,
    n_blocks: int,
    ledger: RunLedger,
    cache: Optional[CompileCache] = None,
) -> PlanningOutcome:
    """The planning flow proper, run inside the root ``plan`` span."""
    tracer = runner.tracer
    partition = runner.run(
        "partition",
        lambda _a: partition_graph(
            graph, n_blocks, seed=config.seed, tracer=tracer
        ),
    )
    plan = runner.run(
        "floorplan",
        # Retries restart the anneal from a perturbed seed.
        lambda attempt: build_floorplan(
            graph,
            partition,
            seed=perturbed_seed(config.seed, attempt),
            hard_blocks=config.hard_blocks,
            whitespace=config.whitespace,
            iterations=config.floorplan_iterations,
            backend=config.floorplan_backend,
            replicas=config.anneal_replicas,
            anneal_jobs=config.anneal_jobs,
            tracer=tracer,
        ),
    )

    iterations: List[PlanningIteration] = []
    first = _run_iteration(
        graph, partition, plan, config, index=1, runner=runner, cache=cache
    )
    iterations.append(first)

    current = first
    while (
        len(iterations) < max_iterations
        and not current.infeasible
        and current.lac is not None
        and current.lac.n_foa > 0
    ):
        congested = _congested_blocks(current)
        if not congested:
            break
        log.info(
            "iteration %d left %d violating FFs; expanding %s",
            current.index,
            current.lac.n_foa,
            ", ".join(congested),
        )
        plan = runner.run(
            "expand_floorplan",
            lambda attempt: expand_floorplan(
                current.floorplan,
                graph,
                congested,
                factor=config.expansion_factor,
                seed=perturbed_seed(config.seed, attempt),
                iterations=config.floorplan_iterations,
                tracer=tracer,
            ),
        )
        current = _run_iteration(
            graph,
            partition,
            plan,
            config,
            index=len(iterations) + 1,
            t_clk=first.t_clk,
            runner=runner,
            cache=cache,
        )
        iterations.append(current)

    return PlanningOutcome(
        circuit=graph.name, config=config, iterations=iterations, ledger=ledger
    )
