"""Independent validation of planning results.

``validate_iteration`` re-derives every reported quantity of a
:class:`~repro.core.planner.PlanningIteration` from first principles
and raises :class:`PlanningError` on any mismatch — a cheap, total
check used by the test suite and available to library users who want
planning outputs they can trust blindly.
"""

from __future__ import annotations

from typing import List

from repro.core.metrics import area_report
from repro.core.planner import PlanningIteration
from repro.errors import PlanningError
from repro.retime.apply import verify_retiming
from repro.retime.minperiod import clock_period
from repro.tech.params import Technology

_TOL = 1e-6


def validate_iteration(
    iteration: PlanningIteration, tech: Technology
) -> List[str]:
    """Re-check one planning iteration; returns the list of checks run.

    Raises:
        PlanningError: any reported number disagrees with a re-derived
            one, or a retiming is illegal / misses its period.
    """
    checks: List[str] = []
    expanded = iteration.expanded

    if iteration.infeasible:
        checks.append("iteration marked infeasible; nothing to validate")
        return checks

    if not iteration.t_min <= iteration.t_clk <= iteration.t_init + _TOL:
        raise PlanningError(
            f"period ordering broken: T_min={iteration.t_min} "
            f"T_clk={iteration.t_clk} T_init={iteration.t_init}"
        )
    checks.append("T_min <= T_clk <= T_init")

    if abs(clock_period(expanded.graph) - iteration.t_init) > _TOL:
        raise PlanningError("reported T_init is not the expanded graph's period")
    checks.append("T_init equals expanded-graph clock period")

    for tag, labels, report in _retimings(iteration):
        retimed = verify_retiming(expanded.graph, labels, period=iteration.t_clk)
        checks.append(f"{tag}: retiming legal and meets T_clk")
        fresh = area_report(retimed, expanded.unit_region, iteration.grid, tech)
        if (fresh.n_foa, fresh.n_f, fresh.n_fn) != (
            report.n_foa,
            report.n_f,
            report.n_fn,
        ):
            raise PlanningError(
                f"{tag}: reported (N_FOA={report.n_foa}, N_F={report.n_f}, "
                f"N_FN={report.n_fn}) != re-derived ({fresh.n_foa}, "
                f"{fresh.n_f}, {fresh.n_fn})"
            )
        checks.append(f"{tag}: N_FOA/N_F/N_FN re-derived identically")
        if retimed.total_flip_flops() != report.n_f:
            raise PlanningError(f"{tag}: N_F != total flip-flops in graph")
        checks.append(f"{tag}: N_F equals graph flip-flop total")
    return checks


def _retimings(iteration: PlanningIteration):
    if iteration.min_area is not None:
        yield "min-area", iteration.min_area.result.labels, iteration.min_area.report
    if iteration.lac is not None:
        yield "LAC", iteration.lac.retiming.labels, iteration.lac.report
