"""Independent validation of planning results (legacy facade).

.. deprecated::
    :mod:`repro.verify` is now the single independent certification
    layer; ``validate_iteration`` remains as a thin facade over
    :func:`repro.verify.verify_iteration` for callers that want the
    historical raise-on-first-failure contract. New code should call
    ``verify_iteration`` (or :func:`repro.verify.verify_outcome`)
    directly and inspect the returned certificates.

``validate_iteration`` re-derives every reported quantity of a
:class:`~repro.core.planner.PlanningIteration` from first principles
and raises :class:`PlanningError` on any mismatch — a cheap, total
check used by the test suite and available to library users who want
planning outputs they can trust blindly.
"""

from __future__ import annotations

from typing import List

from repro.errors import PlanningError
from repro.tech.params import Technology


def validate_iteration(iteration, tech: Technology) -> List[str]:
    """Re-check one planning iteration; returns the list of checks run.

    Facade over :func:`repro.verify.verify_iteration`: every
    certificate that passed becomes one entry in the returned list,
    and the first failed certificate is raised as a
    :class:`PlanningError` naming its witnesses.

    Raises:
        PlanningError: any reported number disagrees with a re-derived
            one, or a retiming is illegal / misses its period.
    """
    # Function-level import: repro.verify ends up importing planner
    # dataclasses, and this module is imported by repro.core itself.
    from repro.verify import verify_iteration

    checks: List[str] = []
    if iteration.infeasible:
        checks.append("iteration marked infeasible; nothing to validate")
        return checks

    for cert in verify_iteration(iteration, tech):
        if not cert.ok:
            witnesses = "; ".join(cert.witnesses[:4])
            raise PlanningError(
                f"validation failed: {cert.label}"
                + (f" ({witnesses})" if witnesses else "")
            )
        if cert.skipped:
            checks.append(f"{cert.label}: skipped ({cert.details.get('note')})")
        else:
            checks.append(f"{cert.label}: re-derived identically")
    return checks
