"""LAC-retiming: the paper's core contribution (Section 4.2).

The local area constrained retiming problem — find a retiming that
meets the clock period while respecting every tile's insertion
capacity (Eqns. (1)–(3)) — is an ILP, so the paper solves it
heuristically as a **series of weighted min-area retimings**:

1. generate edge and clocking constraints *once*;
2. start from uniform unit weights;
3. solve weighted min-area retiming;
4. compute per-tile area consumption ``AC(t)``;
5. stop if all tiles fit, or if no improvement for ``N_max``
   consecutive rounds;
6. otherwise reweight every tile::

       new_w(t) = prev_w(t) * ((1 - alpha) + alpha * AC(t) / C(t))

   assign the tile's weight to all units in it, and go to 3.

``alpha ~ 0.2`` is the paper's recommended damping. The best solution
seen (fewest violating flip-flops ``N_FOA``, ties broken by total
flip-flops ``N_F``) is returned, together with ``N_wr``, the number of
weighted min-area solves — both reported in Table 1.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.metrics import AreaAccountant, AreaReport, area_report
from repro.netlist.graph import CircuitGraph
from repro.obs import NOOP_TRACER
from repro.retime.constraints import build_constraint_system
from repro.retime.expand import IO_REGION
from repro.retime.incremental import IncrementalMinArea
from repro.retime.minarea import RetimingResult, min_area_retiming
from repro.retime.wd import WDMatrices, wd_matrices
from repro.tech.params import DEFAULT_TECH, Technology
from repro.tiles.grid import TileGrid

log = logging.getLogger(__name__)

#: Clamp for tile weights, keeping the integer scaling well conditioned.
WEIGHT_MIN = 1e-3
WEIGHT_MAX = 1e3


@dataclasses.dataclass
class LACResult:
    """Outcome of LAC-retiming."""

    retiming: RetimingResult
    report: AreaReport
    n_wr: int
    tile_weights: Dict[str, float]
    history: List[Tuple[int, int]]  # (N_FOA, N_F) per round
    round_seconds: List[float] = dataclasses.field(default_factory=list)
    solver_stats: Optional[Dict[str, object]] = None  # incremental path only

    @property
    def n_foa(self) -> int:
        return self.report.n_foa


def lac_retiming(
    graph: CircuitGraph,
    unit_region: Mapping[str, str],
    grid: TileGrid,
    period: float,
    tech: Technology = DEFAULT_TECH,
    alpha: float = 0.2,
    n_max: int = 5,
    max_rounds: int = 30,
    prune: bool = True,
    wd: Optional[WDMatrices] = None,
    system=None,
    incremental: bool = True,
    solver_engine: str = "auto",
    tracer=None,
    compiled=None,
) -> LACResult:
    """Run the paper's LAC-retiming heuristic.

    Args:
        graph: Expanded retiming graph (logic + interconnect units).
        unit_region: Capacity region of each unit.
        grid: Tile grid; ``grid.used`` must already contain repeater
            area so remaining capacity matches the paper's ``C(t)``.
        period: Target clock period ``T_clk``.
        tech: Technology constants (flip-flop area).
        alpha: Reweighting damping coefficient (paper recommends 0.2).
        n_max: Stop after this many consecutive non-improving rounds.
        max_rounds: Hard cap on weighted min-area solves.
        prune: Apply clocking-constraint redundancy pruning.
        wd: Optional precomputed W/D matrices.
        system: Optional precomputed constraint system for ``period``
            (the planner shares one system between the min-area
            baseline and LAC, since both retime at the same target).
        incremental: Use the warm-started incremental solver
            (:class:`~repro.retime.incremental.IncrementalMinArea`):
            the flow network is built and Bellman–Ford run once, each
            round only updates demands and re-solves from the previous
            optimum, and rounds are scored from labels without
            materialising a retimed graph. ``False`` runs the original
            cold path (a full ``min_area_retiming`` per round) — kept
            for benchmarking and as a reference implementation.
        solver_engine: Engine for the incremental solver (``"auto"``,
            ``"highs"``, or ``"ssp"``); ignored on the cold path.
        tracer: Optional :class:`repro.obs.Tracer`; each weighted
            min-area round becomes a ``lac/round`` span carrying the
            round's ``N_FOA``/``N_F``, weighted-FF objective, per-tile
            violations and weight spread.
        compiled: Optional :class:`repro.compile.CompiledCircuit` of
            this graph; supplies precomputed pruned clocking pairs and
            the incremental solver's gather arrays.

    Raises:
        InfeasiblePeriodError: ``period`` is unachievable (from the
            underlying weighted min-area retiming).
    """
    if tracer is None:
        tracer = NOOP_TRACER
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    if n_max < 1:
        raise ValueError(f"n_max must be >= 1, got {n_max}")
    if system is None:
        if wd is None and compiled is None:
            wd = wd_matrices(graph)
        # Clocking constraints are generated once — the heuristic's key
        # run-time property (Section 4.2).
        system = build_constraint_system(
            graph, wd, period, prune=prune, compiled=compiled
        )

    solver: Optional[IncrementalMinArea] = None
    accountant: Optional[AreaAccountant] = None
    if incremental:
        # Network construction + Bellman–Ford happen once, here; an
        # infeasible system surfaces immediately as
        # InfeasiblePeriodError, matching the cold path's first round.
        solver = IncrementalMinArea(
            graph, system, engine=solver_engine, compiled=compiled
        )
        accountant = AreaAccountant(graph, unit_region)

    regions = set(unit_region.values())
    tile_weight: Dict[str, float] = {t: 1.0 for t in regions}
    # candidate: labels dict (incremental) or RetimingResult (cold) —
    # the retimed graph is materialised only once, for the winner.
    Candidate = Union[Dict[str, int], RetimingResult]
    best: Optional[Tuple[int, int, Candidate, AreaReport, Dict[str, float]]] = None
    history: List[Tuple[int, int]] = []
    round_seconds: List[float] = []
    stale = 0
    n_wr = 0

    for _round in range(max_rounds):
        unit_weights = {
            u: tile_weight.get(region, 1.0) for u, region in unit_region.items()
        }
        round_start = time.perf_counter()
        with tracer.span("lac/round", round=_round + 1) as span:
            if incremental:
                candidate: Candidate = solver.solve(unit_weights)
                report = accountant.report(candidate, grid, tech)
            else:
                candidate = min_area_retiming(
                    graph, period, weights=unit_weights, system=system
                )
                report = area_report(candidate.graph, unit_region, grid, tech)
            if tracer.enabled:
                # Weighted-FF objective of the round: what the weighted
                # min-area solve actually minimised, in tile-weight
                # units — the convergence quantity of Section 4.2.
                objective = sum(
                    count * tile_weight.get(region, 1.0)
                    for region, count in report.ff_count.items()
                )
                span.set(
                    n_foa=report.n_foa,
                    n_f=report.n_f,
                    objective=objective,
                    violations=dict(report.violations),
                    weight_max=max(tile_weight.values(), default=1.0),
                    engine=solver.stats.engine if solver is not None else "cold",
                    warm_start=incremental and _round > 0,
                )
        round_seconds.append(time.perf_counter() - round_start)
        n_wr += 1
        tracer.metrics.counter("lac_rounds_total").inc()
        tracer.metrics.gauge("lac_n_foa").set(report.n_foa)
        history.append((report.n_foa, report.n_f))
        log.debug(
            "LAC round %d: N_FOA=%d N_F=%d (%d violating tiles)",
            _round + 1,
            report.n_foa,
            report.n_f,
            len(report.violating_regions()),
        )

        key = (report.n_foa, report.n_f)
        if best is None or key < (best[0], best[1]):
            best = (report.n_foa, report.n_f, candidate, report, dict(tile_weight))
            stale = 0
        else:
            stale += 1
        if report.n_foa == 0 or stale >= n_max:
            break

        ratios = report.consumption_ratio(grid, tech)
        for t in tile_weight:
            if t == IO_REGION:
                continue
            ratio = ratios.get(t, 0.0)
            updated = tile_weight[t] * ((1.0 - alpha) + alpha * ratio)
            tile_weight[t] = min(WEIGHT_MAX, max(WEIGHT_MIN, updated))

    assert best is not None  # loop ran at least once or raised
    _foa, _nf, winner, report, weights = best
    if incremental:
        retimed = graph.retimed(winner)
        result = RetimingResult(
            labels=winner,
            graph=retimed,
            period=period,
            total_ffs=retimed.total_flip_flops(),
        )
    else:
        result = winner
    return LACResult(
        retiming=result,
        report=report,
        n_wr=n_wr,
        tile_weights=weights,
        history=history,
        round_seconds=round_seconds,
        solver_stats=solver.stats.to_dict() if solver is not None else None,
    )
