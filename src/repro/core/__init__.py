"""The paper's contribution: LAC-retiming and the planning flow."""

from repro.core.lac import LACResult, lac_retiming
from repro.core.metrics import AreaAccountant, AreaReport, area_report
from repro.core.placement import (
    PlacedFlipFlop,
    commit_flip_flop_area,
    place_flip_flops,
)
from repro.core.flowreport import flow_report_markdown, write_flow_report
from repro.core.timing import TimingReport, timing_report
from repro.core.validate import validate_iteration
from repro.core.planner import (
    PlannerConfig,
    PlanningIteration,
    PlanningOutcome,
    TimedRetiming,
    plan_interconnect,
    validate_planner_config,
)

__all__ = [
    "lac_retiming",
    "LACResult",
    "area_report",
    "AreaReport",
    "AreaAccountant",
    "place_flip_flops",
    "commit_flip_flop_area",
    "PlacedFlipFlop",
    "PlannerConfig",
    "PlanningIteration",
    "PlanningOutcome",
    "TimedRetiming",
    "plan_interconnect",
    "validate_planner_config",
    "validate_iteration",
    "TimingReport",
    "timing_report",
    "flow_report_markdown",
    "write_flow_report",
]
