"""Explicit flip-flop placement after retiming.

Retiming only assigns flip-flops to *edges*; this module realises them
as placed instances. Following the paper, a flip-flop on edge
``(u, v)`` is placed in the same tile as its fanin unit ``u`` — at
``u``'s pin cell for logic units, at the segment's driving cell for
interconnect units. Host-edge flip-flops become boundary (I/O)
registers and are not placed on the fabric.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Tuple

from repro.floorplan.plan import Floorplan
from repro.netlist.graph import CircuitGraph
from repro.retime.expand import IO_REGION
from repro.route.router import pin_cell
from repro.tech.params import DEFAULT_TECH, Technology
from repro.tiles.grid import Cell, TileGrid


@dataclasses.dataclass(frozen=True)
class PlacedFlipFlop:
    """One placed flip-flop instance."""

    edge: Tuple[str, str, int]
    index: int  # 0-based among the flip-flops of this edge
    cell: Optional[Cell]  # None for boundary (host) registers
    region: str


def place_flip_flops(
    graph: CircuitGraph,
    unit_region: Mapping[str, str],
    grid: TileGrid,
    plan: Floorplan,
    jitter_seed: int = 0,
    segment_cell: Optional[Mapping[str, Cell]] = None,
) -> List[PlacedFlipFlop]:
    """Materialise every flip-flop of (retimed) ``graph``.

    ``segment_cell`` maps interconnect-unit names to their driving
    cell; when omitted, interconnect flip-flops are reported with their
    region only (``cell=None``).
    """
    hosts = set(graph.host_units())
    placed: List[PlacedFlipFlop] = []
    for (u, v, key), w in graph.connections():
        if w == 0:
            continue
        region = unit_region.get(u, IO_REGION)
        cell: Optional[Cell]
        if u in hosts:
            cell = None
        elif segment_cell is not None and u in segment_cell:
            cell = segment_cell[u]
        elif plan.placement_of_unit(u) is not None:
            cell = pin_cell(grid, plan, u, jitter_seed)
        else:
            cell = None
        for i in range(w):
            placed.append(
                PlacedFlipFlop(edge=(u, v, key), index=i, cell=cell, region=region)
            )
    return placed


def commit_flip_flop_area(
    placed: List[PlacedFlipFlop],
    grid: TileGrid,
    tech: Technology = DEFAULT_TECH,
) -> int:
    """Reserve grid capacity for placed flip-flops.

    Returns the number of flip-flops that did not fit (which equals
    ``N_FOA`` when placement follows the fanin-tile convention).
    """
    misfits = 0
    for ff in placed:
        if ff.region == IO_REGION:
            continue
        if not grid.reserve(ff.region, tech.ff_area):
            misfits += 1
    return misfits
