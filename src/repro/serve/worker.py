"""Service worker: one child process, one job attempt.

The supervisor launches ``python -m repro.serve.worker <spool> <id>``
for each claimed job. The worker:

1. loads the ``running/<id>.json`` record (and arms any
   ``worker_crash`` fault shipped in via :data:`SERVE_FAULT_ENV`);
2. heartbeats by touching ``running/<id>.hb`` from a daemon thread, so
   the supervisor can tell a hung worker from a slow one;
3. runs the plan with the job's own checkpoint directory
   (``checkpoints/<id>/``, always ``resume=True`` — the first attempt
   finds it empty, a retry finds the previous attempt's committed
   stages and resumes bit-identically) and per-job telemetry files
   under ``events/`` (``repro-trace/1``, ``repro-metrics/1`` and the
   live ``repro-events/1`` stream the server exposes);
4. atomically writes its result document to ``running/<id>.out`` and
   exits with the same per-plan code the one-shot ``plan`` CLI uses.

The worker never touches the record's state — classification of its
death (clean result, flow error, crash, interrupt) is entirely the
supervisor's job, from the exit code and the presence of the result
file. SIGTERM lands in :func:`install_interrupt_handlers`, so a
drained worker flushes checkpoints and exits 4 (resumable); SIGKILL
(or the injected ``worker_crash``) leaves only the durable checkpoints
behind, which is all a retry needs.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.cliutil import (
    EXIT_ERROR,
    EXIT_INFEASIBLE,
    EXIT_INTERRUPTED,
    EXIT_NOT_CONVERGED,
    EXIT_OK,
    EXIT_VERIFY_FAILED,
    install_interrupt_handlers,
)
from repro.errors import InterruptedRunError, ReproError, ServeError
from repro.ioutil import atomic_write

log = logging.getLogger(__name__)

#: Seconds between heartbeat touches.
HEARTBEAT_INTERVAL = 0.5


def arm_faults_from_env():
    """The worker-side injector for a shipped ``worker_crash`` fault."""
    from repro.resilience.faults import SERVE_FAULT_ENV, FaultInjector, ServeFault

    value = os.environ.get(SERVE_FAULT_ENV)
    if not value:
        return None
    fault = ServeFault.from_env(value)
    if fault.kind != "worker_crash":
        return None
    log.warning("armed injected fault: %s", value)
    return FaultInjector([fault.as_spec()])


def _heartbeat(path: Path, stop: threading.Event) -> None:
    while not stop.wait(HEARTBEAT_INTERVAL):
        try:
            path.touch()
        except OSError:
            return


def outcome_result(outcome, seconds: float) -> Dict[str, Any]:
    """The job's result document (the Table-1 claims + verdicts).

    ``t_clk``/``n_foa``/``n_f`` are the bit-identity fields the
    crash-recovery contract is stated over: a requeued, resumed job
    must reproduce them exactly.
    """
    first = outcome.first
    lac = first.lac
    ma = first.min_area
    verification = getattr(outcome, "verification", None)
    return {
        "circuit": outcome.circuit,
        "converged": outcome.converged,
        "degraded": outcome.degraded,
        "infeasible": outcome.final.infeasible,
        "iterations": len(outcome.iterations),
        "t_clk": first.t_clk,
        "t_init": first.t_init,
        "t_min": first.t_min,
        "n_foa": lac.report.n_foa if lac else None,
        "n_f": lac.report.n_f if lac else None,
        "n_fn": lac.report.n_fn if lac else None,
        "n_wr": lac.n_wr if lac else None,
        "ma_n_foa": ma.report.n_foa if ma else None,
        "ma_n_f": ma.report.n_f if ma else None,
        "verified": None if verification is None else bool(verification.ok),
        "seconds": round(seconds, 6),
    }


def outcome_exit_code(outcome) -> int:
    """Map an outcome to the ``plan`` CLI exit-code contract."""
    verification = getattr(outcome, "verification", None)
    if verification is not None and not verification.ok:
        return EXIT_VERIFY_FAILED
    if outcome.converged:
        return EXIT_OK
    if outcome.final.infeasible:
        return EXIT_INFEASIBLE
    return EXIT_NOT_CONVERGED


def run_job(spool: Path, job_id: str) -> int:
    """Execute one claimed job; returns the worker's exit code."""
    from repro.serve.queue import JobQueue
    from repro.serve.wire import JobRecord

    queue = JobQueue(spool, capacity=1)  # path helpers only; no submits
    record_path = queue.path_for("running", job_id)
    try:
        record = JobRecord.from_json(record_path.read_text(encoding="utf-8"))
    except (OSError, ServeError) as exc:
        print(f"error: cannot load job {job_id}: {exc}", file=sys.stderr)
        return EXIT_ERROR

    install_interrupt_handlers()
    faults = arm_faults_from_env()
    stop = threading.Event()
    hb = threading.Thread(
        target=_heartbeat,
        args=(queue.heartbeat_path(job_id), stop),
        name="repro-serve-heartbeat",
        daemon=True,
    )
    hb.start()
    try:
        return _plan_job(queue, record, faults)
    finally:
        stop.set()
        hb.join(timeout=2.0)


def _plan_job(queue, record, faults) -> int:
    from repro.core import plan_interconnect
    from repro.experiments.circuits import load_circuit
    from repro.resilience import CheckpointManager

    try:
        graph, plan_kwargs = load_circuit(record.circuit)
    except KeyError as exc:
        _write_out(queue, record.id, {"error": str(exc.args[0])})
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR

    options = record.options or {}
    overrides: Dict[str, Any] = dict(plan_kwargs)
    iterations = int(options.get("iterations", 2))
    if options.get("quick"):
        overrides["floorplan_iterations"] = 300
        iterations = 1
    overrides["trace_path"] = str(queue.trace_path(record.id))
    overrides["metrics_path"] = str(queue.metrics_path(record.id))
    overrides["progress_path"] = str(queue.events_path(record.id))

    checkpoint = CheckpointManager(queue.checkpoint_dir(record.id), resume=True)
    t0 = time.perf_counter()
    try:
        outcome = plan_interconnect(
            graph,
            max_iterations=iterations,
            faults=faults,
            checkpoint=checkpoint,
            verify=bool(options.get("verify")),
            **overrides,
        )
    except InterruptedRunError as exc:
        log.info("job %s interrupted (%s); checkpoints are durable", record.id, exc)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        _write_out(queue, record.id, {"error": f"{type(exc).__name__}: {exc}"})
        print(f"error: job {record.id} failed: {exc}", file=sys.stderr)
        return EXIT_ERROR
    result = outcome_result(outcome, time.perf_counter() - t0)
    _write_out(queue, record.id, result)
    return outcome_exit_code(outcome)


def _write_out(queue, job_id: str, doc: Dict[str, Any]) -> None:
    atomic_write(queue.out_path(job_id), json.dumps(doc, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.worker",
        description="planning-service worker (one job attempt per process)",
    )
    parser.add_argument("spool", help="service spool directory")
    parser.add_argument("job_id", help="id of a job in running/")
    parser.add_argument("-v", "--verbose", action="count", default=0)
    args = parser.parse_args(argv)
    if args.verbose:
        logging.basicConfig(
            stream=sys.stderr,
            level=logging.DEBUG if args.verbose > 1 else logging.INFO,
            format="%(levelname).1s %(name)s: %(message)s",
        )
    return run_job(Path(args.spool), args.job_id)


if __name__ == "__main__":
    sys.exit(main())
