"""Bounded, crash-surviving job spool for the planning service.

Layout (one directory per coarse state; *the directory a record lives
in is the authoritative state*, the embedded ``state`` field is a
convenience that recovery rewrites)::

    <spool>/
        queued/   j00000001-<rand>.json      # FIFO by filename
        running/  j00000002-<rand>.json      # + .hb heartbeat, .out result
        done/     ...
        failed/   ...                        # includes canceled jobs
        quarantine/                          # corrupt records, kept
        events/   <id>.events.jsonl          # per-job repro-events/1
                  <id>.metrics.jsonl         # per-job repro-metrics/1
                  <id>.trace.jsonl           # per-job repro-trace/1
        checkpoints/<id>/                    # per-job repro-ckpt/1 store

Every transition is an ``os.replace`` between sibling directories plus
an atomic rewrite of the record, so a kill at any instant leaves each
job in exactly one well-defined state: a record still in ``running/``
when the daemon restarts is, by construction, a job whose daemon died
under it — :meth:`JobQueue.recover` moves it back to ``queued/`` (with
its claim attempt refunded) and the next worker resumes it from its
checkpoint directory.

The queue is *bounded*: :meth:`JobQueue.submit` raises
:class:`~repro.errors.QueueFullError` once ``capacity`` jobs are
queued — the server maps that to HTTP 429 and sheds the load instead
of growing without bound.

Corrupt records (truncated writes, hand-edited files, the armed
``queue_corrupt`` fault) are quarantined on first read and never acted
on, mirroring the checkpoint and compile-cache stores.

Concurrency: one daemon process owns the spool; within it, submissions
arrive on HTTP handler threads while the supervisor claims on the main
thread, so every mutating method holds one lock.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import QueueFullError, ServeError
from repro.ioutil import atomic_write
from repro.serve.wire import JobRecord, new_job_id, normalize_options

log = logging.getLogger(__name__)

#: Coarse states that map to spool subdirectories.
STATE_DIRS = ("queued", "running", "done", "failed")


class JobQueue:
    """The persistent job store; all state transitions go through here."""

    def __init__(
        self,
        root: Union[str, Path],
        capacity: int = 64,
        faults=None,
    ):
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        self.root = Path(root)
        self.capacity = capacity
        self.faults = faults
        self._lock = threading.Lock()
        try:
            for sub in STATE_DIRS + ("quarantine", "events", "checkpoints"):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ServeError(f"cannot create spool at {self.root}: {exc}") from exc
        self._seq = self._scan_seq()

    # -- paths ---------------------------------------------------------
    def path_for(self, state_dir: str, job_id: str) -> Path:
        return self.root / state_dir / f"{job_id}.json"

    def heartbeat_path(self, job_id: str) -> Path:
        return self.root / "running" / f"{job_id}.hb"

    def out_path(self, job_id: str) -> Path:
        """Where the worker leaves its result document."""
        return self.root / "running" / f"{job_id}.out"

    def events_path(self, job_id: str) -> Path:
        return self.root / "events" / f"{job_id}.events.jsonl"

    def metrics_path(self, job_id: str) -> Path:
        return self.root / "events" / f"{job_id}.metrics.jsonl"

    def trace_path(self, job_id: str) -> Path:
        return self.root / "events" / f"{job_id}.trace.jsonl"

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.root / "checkpoints" / job_id

    # -- internals -----------------------------------------------------
    def _scan_seq(self) -> int:
        from repro.serve.wire import job_seq

        best = 0
        for sub in STATE_DIRS + ("quarantine",):
            for path in (self.root / sub).glob("j*.json"):
                best = max(best, job_seq(path.stem))
        return best

    def _read(self, path: Path) -> Optional[JobRecord]:
        """Load one record; quarantine and report None when corrupt."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            self._quarantine(path, f"unreadable ({exc})")
            return None
        try:
            return JobRecord.from_json(text)
        except ServeError as exc:
            self._quarantine(path, str(exc))
            return None

    def _quarantine(self, path: Path, reason: str) -> None:
        log.warning("job record %s quarantined: %s", path, reason)
        qdir = self.root / "quarantine"
        try:
            qdir.mkdir(exist_ok=True)
            path.replace(qdir / path.name)
        except OSError as exc:
            log.warning("could not quarantine %s (%s); deleting", path, exc)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def _write(self, state_dir: str, record: JobRecord) -> Path:
        path = self.path_for(state_dir, record.id)
        atomic_write(path, record.to_json() + "\n")
        return path

    def _move(self, record: JobRecord, src: str, dst: str, state: str) -> None:
        """Transition ``record`` between spool dirs, rewrite its body."""
        record.state = state
        record.touch()
        src_path = self.path_for(src, record.id)
        dst_path = self.path_for(dst, record.id)
        try:
            os.replace(src_path, dst_path)
        except FileNotFoundError:
            pass  # recovery path: the source side was already consumed
        self._write(dst, record)

    # -- submission ----------------------------------------------------
    def submit(
        self,
        circuit: str,
        options: Optional[Dict[str, Any]] = None,
        max_attempts: int = 2,
        deadline: Optional[float] = None,
    ) -> JobRecord:
        """Spool a new job, FIFO-ordered behind everything queued.

        Raises:
            QueueFullError: ``capacity`` jobs are already queued — the
                caller must shed the submission, never buffer it.
            ServeError: The options are malformed.
        """
        opts = normalize_options(options)
        with self._lock:
            if self.queued_count() >= self.capacity:
                raise QueueFullError(self.capacity)
            self._seq += 1
            now = time.time()
            record = JobRecord(
                id=new_job_id(self._seq),
                circuit=circuit,
                options=opts,
                state="queued",
                created=now,
                updated=now,
                max_attempts=max_attempts,
                deadline=deadline,
            )
            path = self._write("queued", record)
        log.info("job %s queued (circuit %s)", record.id, circuit)
        if self.faults is not None:
            self.faults.on_spool(record.id, path)
        return record

    # -- claiming ------------------------------------------------------
    def claim(self, now: Optional[float] = None) -> Optional[JobRecord]:
        """Move the oldest eligible queued job to ``running``.

        Jobs whose ``not_before`` backoff has not elapsed are skipped
        (they keep their FIFO slot for the next pass). Returns ``None``
        when nothing is runnable.
        """
        now = time.time() if now is None else now
        with self._lock:
            for path in sorted((self.root / "queued").glob("j*.json")):
                record = self._read(path)
                if record is None:
                    continue
                if record.not_before is not None and now < record.not_before:
                    continue
                record.attempts += 1
                record.not_before = None
                self._move(record, "queued", "running", "running")
                log.info(
                    "job %s claimed (attempt %d/%d)",
                    record.id,
                    record.attempts,
                    record.max_attempts,
                )
                return record
        return None

    # -- transitions out of running ------------------------------------
    def update(self, record: JobRecord) -> None:
        """Rewrite a running record in place (worker pid, progress...)."""
        with self._lock:
            record.touch()
            self._write("running", record)

    def finish(
        self,
        record: JobRecord,
        state: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        exit_code: Optional[int] = None,
    ) -> None:
        """Move a running job to its terminal state (+ cleanup)."""
        if state not in ("done", "failed", "canceled"):
            raise ServeError(f"finish() cannot target state {state!r}")
        with self._lock:
            record.result = result
            record.error = error
            record.exit_code = exit_code
            record.worker = None
            dst = "failed" if state == "canceled" else state
            self._move(record, "running", dst, state)
            self._clean_running_side(record.id)
        log.info("job %s -> %s%s", record.id, state, f" ({error})" if error else "")

    def requeue(
        self,
        record: JobRecord,
        error: Optional[str] = None,
        backoff: float = 0.0,
        refund_attempt: bool = False,
    ) -> None:
        """Put a running job back on the queue (crash/deadline/drain).

        ``refund_attempt`` undoes the claim's attempt count for
        interruptions that are not the job's failure (daemon restart,
        graceful drain), so a job can survive any number of restarts.
        """
        with self._lock:
            if refund_attempt and record.attempts > 0:
                record.attempts -= 1
            record.error = error
            record.worker = None
            record.not_before = time.time() + backoff if backoff > 0 else None
            self._move(record, "running", "queued", "queued")
            self._clean_running_side(record.id)
        log.info(
            "job %s requeued (%s; attempt %d/%d)",
            record.id,
            error or "interrupted",
            record.attempts,
            record.max_attempts,
        )

    def cancel_queued(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a still-queued job; running jobs go through the supervisor."""
        with self._lock:
            path = self.path_for("queued", job_id)
            if not path.exists():
                return None
            record = self._read(path)
            if record is None:
                return None
            record.error = "canceled"
            self._move(record, "queued", "failed", "canceled")
            return record

    def _clean_running_side(self, job_id: str) -> None:
        for side in (self.heartbeat_path(job_id), self.out_path(job_id)):
            try:
                side.unlink(missing_ok=True)
            except OSError:
                pass

    # -- restart recovery ----------------------------------------------
    def recover(self) -> List[str]:
        """Requeue every job a dead daemon left in ``running/``.

        Also sweeps corrupt records out of ``queued/`` (quarantined on
        read) and deletes orphaned heartbeat/result side files. Returns
        the requeued job ids.
        """
        requeued: List[str] = []
        for path in sorted((self.root / "running").glob("j*.json")):
            record = self._read(path)
            if record is None:
                continue
            self.requeue(
                record,
                error="daemon restarted while job was running",
                refund_attempt=True,
            )
            requeued.append(record.id)
        for stray in (self.root / "running").glob("j*"):
            if stray.suffix in (".hb", ".out"):
                stray.unlink(missing_ok=True)
        # Touching every queued record validates it (corrupt ones are
        # quarantined here, not at claim time in the serving loop).
        for path in sorted((self.root / "queued").glob("j*.json")):
            self._read(path)
        if requeued:
            log.info("recovered %d interrupted job(s): %s", len(requeued), requeued)
        return requeued

    # -- introspection -------------------------------------------------
    def queued_count(self) -> int:
        return sum(1 for _ in (self.root / "queued").glob("j*.json"))

    def get(self, job_id: str) -> Optional[JobRecord]:
        for sub in STATE_DIRS:
            path = self.path_for(sub, job_id)
            if path.exists():
                return self._read(path)
        return None

    def list_jobs(self) -> List[JobRecord]:
        """Every job in the spool, submission-ordered."""
        records: List[JobRecord] = []
        for sub in STATE_DIRS:
            for path in (self.root / sub).glob("j*.json"):
                record = self._read(path)
                if record is not None:
                    records.append(record)
        return sorted(records, key=lambda r: r.id)

    def counts(self) -> Dict[str, int]:
        out = {
            sub: sum(1 for _ in (self.root / sub).glob("j*.json"))
            for sub in STATE_DIRS
        }
        out["quarantined"] = sum(
            1 for _ in (self.root / "quarantine").glob("j*.json")
        )
        return out
