"""Wire schemas for the planning service (``repro-job/1``).

A *job* is one request to plan a named circuit. Its whole lifecycle is
a single JSON document — spooled to disk by the queue, shipped over
HTTP by the server, and updated in place as the supervisor moves it
through its states::

    {"schema": "repro-job/1", "id": "j00000001-4fa2b6c1",
     "circuit": "s298", "options": {"quick": true, "iterations": 1,
     "verify": false}, "state": "queued", "created": ..., "updated": ...,
     "attempts": 0, "max_attempts": 2, "deadline": null,
     "not_before": null, "worker": null, "result": null,
     "error": null, "exit_code": null}

States and their meaning (the spool directory a record lives in is the
authoritative coarse state — see :mod:`repro.serve.queue`):

* ``queued``   — accepted, waiting for a worker slot;
* ``running``  — claimed by the supervisor, a worker process owns it;
* ``done``     — the worker produced a result (the plan may still be
  unconverged or infeasible — ``exit_code`` carries the per-plan
  verdict exactly as the one-shot ``plan`` CLI would have exited);
* ``failed``   — no result will ever come (flow error, attempts
  exhausted after crashes, deadline with no retries left);
* ``canceled`` — withdrawn by a client (stored under ``failed/``).

``attempts`` counts claims; a crash or deadline kill requeues the job
until ``max_attempts`` is exhausted, and every retry resumes from the
job's checkpoint directory so the eventual result is bit-identical to
an undisturbed run. ``not_before`` implements retry backoff;
``deadline`` is the per-job wall-clock budget in seconds.

Job ids embed a zero-padded sequence number, so lexicographic filename
order *is* FIFO submission order, plus a random suffix so ids are
never reused across spool generations.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Dict, Optional

from repro.errors import ServeError

JOB_SCHEMA = "repro-job/1"

#: Every legal ``state`` value.
JOB_STATES = ("queued", "running", "done", "failed", "canceled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "canceled")

#: Job options the service accepts, with defaults. Everything else is
#: rejected at submission time — a multi-tenant queue must not accept
#: records it cannot run.
_OPTION_DEFAULTS: Dict[str, Any] = {
    "quick": False,
    "iterations": 2,
    "verify": False,
}


def normalize_options(options: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Validated, defaulted copy of a submission's ``options``.

    Raises:
        ServeError: Unknown option names or ill-typed values.
    """
    out = dict(_OPTION_DEFAULTS)
    for key, value in (options or {}).items():
        if key not in _OPTION_DEFAULTS:
            raise ServeError(
                f"unknown job option {key!r} "
                f"(expected one of {', '.join(sorted(_OPTION_DEFAULTS))})"
            )
        if key == "iterations":
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ServeError(f"iterations must be an int >= 1, got {value!r}")
        elif not isinstance(value, bool):
            raise ServeError(f"{key} must be a bool, got {value!r}")
        out[key] = value
    return out


def new_job_id(seq: int) -> str:
    """Allocate a job id: FIFO-sortable sequence + collision suffix."""
    return f"j{seq:08d}-{os.urandom(4).hex()}"


def job_seq(job_id: str) -> int:
    """The sequence number embedded in a job id (0 when malformed)."""
    try:
        return int(job_id[1:9])
    except (ValueError, IndexError):
        return 0


@dataclasses.dataclass
class JobRecord:
    """One job's full state, as spooled and as served over HTTP."""

    id: str
    circuit: str
    options: Dict[str, Any] = dataclasses.field(default_factory=dict)
    state: str = "queued"
    created: float = 0.0
    updated: float = 0.0
    attempts: int = 0
    max_attempts: int = 2
    deadline: Optional[float] = None
    not_before: Optional[float] = None
    worker: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    exit_code: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def touch(self, now: Optional[float] = None) -> None:
        self.updated = time.time() if now is None else now

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["schema"] = JOB_SCHEMA
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Any) -> "JobRecord":
        """Parse and validate one ``repro-job/1`` document.

        Raises:
            ServeError: Structural problems — wrong schema, missing
                fields, an unknown state — so the queue can quarantine
                a corrupt record instead of acting on it.
        """
        if not isinstance(doc, dict):
            raise ServeError(f"job record is not an object: {type(doc).__name__}")
        if doc.get("schema") != JOB_SCHEMA:
            raise ServeError(
                f"expected schema {JOB_SCHEMA!r}, got {doc.get('schema')!r}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        fields = {k: v for k, v in doc.items() if k in known}
        for required in ("id", "circuit", "state"):
            if not isinstance(fields.get(required), str) or not fields[required]:
                raise ServeError(f"job record missing {required!r}")
        if fields["state"] not in JOB_STATES:
            raise ServeError(f"unknown job state {fields['state']!r}")
        if not isinstance(fields.get("options", {}), dict):
            raise ServeError("job options must be an object")
        for num in ("attempts", "max_attempts"):
            if num in fields and not isinstance(fields[num], int):
                raise ServeError(f"{num} must be an int")
        return cls(**fields)

    @classmethod
    def from_json(cls, text: str) -> "JobRecord":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServeError(f"job record is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)
