"""Supervised worker pool: spawn, watch, requeue, resume.

The :class:`Supervisor` owns every worker process the service runs.
Its :meth:`~Supervisor.tick` is called from the daemon's main loop
and does three things, in order:

1. **reap** — classify every exited worker from its exit code plus the
   presence of the result file, and move the job accordingly:

   ========================  =============================================
   worker exit               job transition
   ========================  =============================================
   0 / 1 / 3 / 5 + result    ``done`` (``exit_code`` keeps the verdict)
   2 (flow error)            ``failed`` — deterministic, retrying is noise
   4 (interrupted)           requeued, attempt refunded (drain/SIGTERM is
                             not the job's failure)
   crash (signal, 137,       requeued with exponential backoff while
   missing result)           attempts remain, else ``failed``
   ========================  =============================================

2. **enforce** — kill workers over their wall-clock deadline and
   workers whose heartbeat went stale (hung, not slow: the heartbeat
   thread touches its file every 0.5 s even while the GIL-holding
   solver grinds); both classify like crashes, so checkpoint-resumed
   retries still apply while attempts remain;

3. **claim** — while slots are free (and draining has not stopped
   claims), pull queued jobs and spawn workers.

Retry semantics deliberately reuse :class:`~repro.resilience.policy.
StagePolicy`: ``max_attempts`` bounds claims per job and ``timeout``
is the default per-job deadline, so the service's recovery posture is
expressed in the same vocabulary as the in-process stages. Because
every attempt runs with the job's durable checkpoint directory, a
retry resumes at the last committed stage and the final result is
bit-identical to an undisturbed run — crash recovery never changes
answers, only wall-clock.

A ``worker_crash`` :class:`~repro.resilience.faults.ServeFault` armed
on the injector fires here at spawn time: the chosen worker gets the
fault in its environment and hard-exits mid-plan, which is how CI
proves the requeue-and-resume path with a deterministic kill.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.cliutil import (
    EXIT_ERROR,
    EXIT_INFEASIBLE,
    EXIT_INTERRUPTED,
    EXIT_NOT_CONVERGED,
    EXIT_OK,
    EXIT_VERIFY_FAILED,
)
from repro.resilience.faults import SERVE_FAULT_ENV
from repro.resilience.policy import StagePolicy
from repro.serve.queue import JobQueue
from repro.serve.wire import JobRecord

log = logging.getLogger(__name__)

#: Worker exit codes that carry a result document ("the plan ran").
_RESULT_EXITS = (EXIT_OK, EXIT_NOT_CONVERGED, EXIT_INFEASIBLE, EXIT_VERIFY_FAILED)


@dataclasses.dataclass
class WorkerHandle:
    """One live worker process and the job it owns."""

    record: JobRecord
    proc: subprocess.Popen
    started: float
    deadline: Optional[float]
    canceled: bool = False
    deadline_exceeded: bool = False
    hung: bool = False
    #: Set when the drain path signals this worker: whatever way it
    #: dies, its job requeues with the attempt refunded (a drain kill
    #: is the daemon's doing, not the job's) — this covers workers
    #: SIGTERMed before their interrupt handlers are even installed.
    drained: bool = False


class Supervisor:
    """Process pool tied to a :class:`~repro.serve.queue.JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        workers: int = 2,
        policy: Optional[StagePolicy] = None,
        backoff: float = 0.25,
        heartbeat_timeout: float = 30.0,
        faults=None,
        python: Optional[str] = None,
    ):
        self.queue = queue
        self.workers = max(1, workers)
        self.policy = policy or StagePolicy(max_attempts=2)
        self.backoff = backoff
        self.heartbeat_timeout = heartbeat_timeout
        self.faults = faults
        self.python = python or sys.executable
        self.accepting_claims = True
        self.running: Dict[str, WorkerHandle] = {}
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.crashes_recovered = 0

    # -- main loop -----------------------------------------------------
    def tick(self, now: Optional[float] = None) -> bool:
        """One supervision pass. Returns True when anything happened."""
        now = time.time() if now is None else now
        acted = self._reap()
        acted = self._enforce(now) or acted
        while self.accepting_claims and len(self.running) < self.workers:
            record = self.queue.claim(now)
            if record is None:
                break
            self._spawn(record, now)
            acted = True
        return acted

    @property
    def idle(self) -> bool:
        return not self.running

    # -- spawning ------------------------------------------------------
    def _spawn(self, record: JobRecord, now: float) -> None:
        env = dict(os.environ)
        # The worker must import repro even when the daemon was started
        # from a source tree without an installed package.
        pkg_root = str(Path(__file__).resolve().parents[2])
        parts = [pkg_root] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        env.pop(SERVE_FAULT_ENV, None)
        if self.faults is not None:
            fault_env = self.faults.worker_env()
            if fault_env:
                env[SERVE_FAULT_ENV] = fault_env
                log.warning(
                    "job %s: injecting %s into worker", record.id, fault_env
                )
        log_path = self.queue.root / "events" / f"{record.id}.log"
        log_file = open(log_path, "a", encoding="utf-8")
        try:
            proc = subprocess.Popen(
                [
                    self.python,
                    "-m",
                    "repro.serve.worker",
                    str(self.queue.root),
                    record.id,
                ],
                stdout=log_file,
                stderr=subprocess.STDOUT,
                env=env,
                start_new_session=True,
            )
        except OSError as exc:
            log.error("job %s: cannot spawn worker: %s", record.id, exc)
            self._retry_or_fail(record, f"worker spawn failed: {exc}")
            return
        finally:
            # The child holds its own duplicate of the fd either way.
            log_file.close()
        record.worker = {"pid": proc.pid, "started": now}
        self.queue.update(record)
        deadline = record.deadline
        if deadline is None:
            deadline = self.policy.timeout
        self.running[record.id] = WorkerHandle(
            record=record, proc=proc, started=now, deadline=deadline
        )
        log.info(
            "job %s: worker pid %d started (deadline %s)",
            record.id,
            proc.pid,
            f"{deadline:g}s" if deadline else "none",
        )

    # -- reaping -------------------------------------------------------
    def _reap(self) -> bool:
        acted = False
        for job_id in list(self.running):
            handle = self.running[job_id]
            rc = handle.proc.poll()
            if rc is None:
                continue
            del self.running[job_id]
            self._classify(handle, rc)
            acted = True
        return acted

    def _classify(self, handle: WorkerHandle, rc: int) -> None:
        record = handle.record
        out = self._read_out(record.id)
        if handle.canceled:
            self.queue.finish(record, "canceled", error="canceled")
            return
        if handle.deadline_exceeded:
            self._retry_or_fail(
                record, f"deadline exceeded ({handle.deadline:g}s)"
            )
            return
        if handle.hung:
            self._retry_or_fail(
                record,
                f"worker heartbeat stale > {self.heartbeat_timeout:g}s (hung)",
            )
            return
        if rc == EXIT_INTERRUPTED:
            self.queue.requeue(
                record,
                error="worker interrupted (drain/SIGTERM)",
                refund_attempt=True,
            )
            return
        if rc in _RESULT_EXITS and out is not None and "error" not in out:
            self.jobs_completed += 1
            self.queue.finish(record, "done", result=out, exit_code=rc)
            return
        if rc == EXIT_ERROR:
            self.jobs_failed += 1
            error = (out or {}).get("error", "flow error")
            self.queue.finish(record, "failed", error=error, exit_code=rc)
            return
        if handle.drained:
            self.queue.requeue(
                record,
                error="worker stopped during drain",
                refund_attempt=True,
            )
            return
        # Anything else is a crash: a signal death (rc < 0), the
        # injected 137, or a "clean" exit that left no result behind.
        self._retry_or_fail(record, f"worker crashed (exit {rc})")

    def _read_out(self, job_id: str) -> Optional[dict]:
        import json

        path = self.queue.out_path(job_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def _retry_or_fail(self, record: JobRecord, error: str) -> None:
        if record.attempts < record.max_attempts:
            self.crashes_recovered += 1
            backoff = self.backoff * (2 ** max(record.attempts - 1, 0))
            self.queue.requeue(
                record, error=f"{error}; retrying from checkpoint", backoff=backoff
            )
        else:
            self.jobs_failed += 1
            self.queue.finish(
                record,
                "failed",
                error=f"{error} after {record.attempts} attempt(s)",
                exit_code=None,
            )

    # -- deadline / heartbeat enforcement ------------------------------
    def _enforce(self, now: float) -> bool:
        acted = False
        for handle in list(self.running.values()):
            if handle.proc.poll() is not None:
                continue  # reaped next tick
            if (
                handle.deadline is not None
                and now - handle.started > handle.deadline
            ):
                handle.deadline_exceeded = True
                self._kill(handle)
                acted = True
                continue
            hb = self.queue.heartbeat_path(handle.record.id)
            try:
                stale = now - hb.stat().st_mtime > self.heartbeat_timeout
            except OSError:
                # No heartbeat yet: measure from process start instead.
                stale = now - handle.started > self.heartbeat_timeout
            if stale:
                handle.hung = True
                self._kill(handle)
                acted = True
        return acted

    def _kill(self, handle: WorkerHandle) -> None:
        log.warning(
            "job %s: killing worker pid %d (%s)",
            handle.record.id,
            handle.proc.pid,
            "deadline" if handle.deadline_exceeded else "stale heartbeat",
        )
        try:
            handle.proc.kill()
        except OSError:
            pass

    # -- external control ----------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a *running* job (queued ones cancel in the queue)."""
        handle = self.running.get(job_id)
        if handle is None:
            return False
        handle.canceled = True
        try:
            handle.proc.kill()
        except OSError:
            pass
        return True

    def signal_workers(self, sig: int = signal.SIGTERM) -> List[str]:
        """Forward a signal to every live worker (drain grace expiry)."""
        signaled = []
        for handle in self.running.values():
            handle.drained = True
            try:
                handle.proc.send_signal(sig)
                signaled.append(handle.record.id)
            except OSError:
                pass
        return signaled

    def abort(self) -> List[str]:
        """Hard stop: SIGKILL every worker and requeue its job.

        The jobs stay resumable — their checkpoints are durable — so a
        later daemon finishes them with bit-identical results.
        """
        aborted = []
        for job_id in list(self.running):
            handle = self.running.pop(job_id)
            try:
                handle.proc.kill()
                handle.proc.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                pass
            self.queue.requeue(
                handle.record, error="daemon aborted", refund_attempt=True
            )
            aborted.append(job_id)
        return aborted

    def stats(self) -> Dict[str, int]:
        return {
            "running": len(self.running),
            "completed": self.jobs_completed,
            "failed": self.jobs_failed,
            "crashes_recovered": self.crashes_recovered,
        }
