"""The planning service: a supervised, crash-surviving job daemon.

``python -m repro serve`` turns the one-shot planning CLI into a
long-running service: submissions spool into a bounded on-disk queue
(:mod:`repro.serve.queue`), a supervised process pool runs each job in
its own worker with its own checkpoint directory
(:mod:`repro.serve.supervisor`, :mod:`repro.serve.worker`), and a
small stdlib HTTP front (:mod:`repro.serve.server`) exposes health,
readiness, submission, and per-job telemetry endpoints speaking the
existing ``repro-events/1`` / ``repro-metrics/1`` wire formats.

The design invariants, stated once:

* **The spool directory is the state machine.** A job's record lives
  in exactly one of ``queued/ running/ done/ failed/``; transitions
  are atomic renames; a kill at any instant leaves a recoverable spool.
* **Workers are disposable.** Any worker death — crash, OOM-like
  ``worker_crash`` injection, SIGKILL, deadline, stale heartbeat —
  requeues the job, and the retry resumes from the job's durable
  checkpoints to a bit-identical result.
* **Backpressure is explicit.** A full queue sheds submissions with
  HTTP 429 (CLI exit 6); memory use is bounded by construction.
"""

from repro.serve.client import ServeClient
from repro.serve.queue import STATE_DIRS, JobQueue
from repro.serve.server import ServeState, build_http_server, serve_forever, serve_main
from repro.serve.supervisor import Supervisor
from repro.serve.wire import (
    JOB_SCHEMA,
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    normalize_options,
)

__all__ = [
    "JOB_SCHEMA",
    "JOB_STATES",
    "STATE_DIRS",
    "TERMINAL_STATES",
    "JobQueue",
    "JobRecord",
    "ServeClient",
    "ServeState",
    "Supervisor",
    "build_http_server",
    "normalize_options",
    "serve_forever",
    "serve_main",
]
