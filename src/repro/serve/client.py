"""Stdlib HTTP client for the planning service.

Used by the ``repro submit`` / ``repro jobs`` CLI subcommands and the
test-suite; speaks the same two transports the daemon binds — TCP and
Unix domain sockets — through :class:`http.client` so the service has
zero dependencies on either side.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServeError


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, socket_path: str, timeout: float = 10.0):
        super().__init__("localhost", timeout=timeout)
        self.socket_path = socket_path

    def connect(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        self.sock = sock


class ServeClient:
    """Thin, connection-per-request client for ``repro serve``.

    Exactly one of ``socket_path`` or ``port`` must be given, matching
    the daemon's ``--socket`` / ``--port``.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 10.0,
    ):
        if bool(socket_path) == bool(port):
            raise ServeError("ServeClient needs exactly one of socket_path or port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        """One request; returns ``(status, parsed-JSON-or-text)``."""
        conn = self._connection()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"cannot reach service at "
                    f"{self.socket_path or f'{self.host}:{self.port}'}: {exc}"
                ) from exc
            text = raw.decode("utf-8", errors="replace")
            if resp.getheader("Content-Type", "").startswith("application/json"):
                try:
                    return resp.status, json.loads(text)
                except json.JSONDecodeError:
                    pass
            return resp.status, text
        finally:
            conn.close()

    # -- endpoint wrappers ---------------------------------------------
    def health(self) -> Dict[str, Any]:
        status, doc = self.request("GET", "/healthz")
        if status != 200:
            raise ServeError(f"healthz returned {status}: {doc}")
        return doc

    def ready(self) -> bool:
        status, _doc = self.request("GET", "/readyz")
        return status == 200

    def submit(
        self,
        circuit: str,
        options: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[int, Any]:
        """Submit one job. Returns the raw ``(status, body)`` so the
        caller can distinguish 201 (spooled) / 429 (shed) / 503
        (draining) — the CLI maps these to its exit-code contract."""
        body: Dict[str, Any] = {"circuit": circuit}
        if options:
            body["options"] = options
        if deadline is not None:
            body["deadline"] = deadline
        return self.request("POST", "/jobs", body=body)

    def jobs(self) -> List[Dict[str, Any]]:
        status, doc = self.request("GET", "/jobs")
        if status != 200:
            raise ServeError(f"jobs returned {status}: {doc}")
        return doc["jobs"]

    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        status, doc = self.request("GET", f"/jobs/{job_id}")
        if status == 404:
            return None
        if status != 200:
            raise ServeError(f"jobs/{job_id} returned {status}: {doc}")
        return doc

    def cancel(self, job_id: str) -> Tuple[int, Any]:
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def events(self, job_id: str) -> str:
        """The job's ``repro-events/1`` stream (empty when absent)."""
        status, text = self.request("GET", f"/jobs/{job_id}/events")
        if status == 404:
            return ""
        if status != 200:
            raise ServeError(f"events returned {status}: {text}")
        return text if isinstance(text, str) else json.dumps(text)

    def metrics(self, job_id: str) -> str:
        """The job's ``repro-metrics/1`` lines (empty when absent)."""
        status, text = self.request("GET", f"/jobs/{job_id}/metrics")
        if status == 404:
            return ""
        if status != 200:
            raise ServeError(f"metrics returned {status}: {text}")
        return text if isinstance(text, str) else json.dumps(text)

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Block until the job reaches a terminal state.

        Raises:
            ServeError: Unknown job, or ``timeout`` elapsed first.
        """
        from repro.serve.wire import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc is None:
                raise ServeError(f"no job {job_id}")
            if doc.get("state") in TERMINAL_STATES:
                return doc
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {doc.get('state')!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll)
