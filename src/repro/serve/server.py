"""The planning-service daemon: HTTP front + supervision loop.

``python -m repro serve`` builds three pieces and runs them until told
to stop:

* a :class:`~repro.serve.queue.JobQueue` on the spool directory
  (recovering any jobs a previous daemon left running);
* a :class:`~repro.serve.supervisor.Supervisor` ticking on the main
  thread;
* a threaded HTTP server — TCP (``--port``) or a Unix domain socket
  (``--socket``) — serving:

  ==============================  ======================================
  endpoint                        meaning
  ==============================  ======================================
  ``GET /healthz``                liveness + queue/worker counters
  ``GET /readyz``                 200 only while accepting submissions
  ``POST /jobs``                  submit; 201 / 400 / 429 (shed) / 503
  ``GET /jobs``                   list every job in the spool
  ``GET /jobs/<id>``              one job's full ``repro-job/1`` record
  ``POST /jobs/<id>/cancel``      cancel queued or running
  ``GET /jobs/<id>/events``       the job's live ``repro-events/1``
                                  stream (``?follow=1`` tails it)
  ``GET /jobs/<id>/metrics``      the job's ``repro-metrics/1`` lines
  ``GET /jobs/<id>/trace``        the job's ``repro-trace/1`` file
  ==============================  ======================================

Shutdown contract:

* **SIGTERM** (or a first SIGINT) starts a *graceful drain*: readyz
  flips to 503, submissions are refused, no new jobs are claimed, and
  running workers get ``--drain-grace`` seconds to finish. Workers
  still alive after the grace are SIGTERMed — they checkpoint and exit
  4, and their jobs are requeued with the attempt refunded. The daemon
  then exits 0 with an empty ``running/`` spool: everything is either
  terminal or queued for the next daemon.
* **SIGINT × 2** aborts hard: workers are SIGKILLed, their jobs
  requeued (checkpoints make them resumable), exit code 4.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.cliutil import EXIT_ERROR, EXIT_INTERRUPTED, EXIT_OK
from repro.errors import QueueFullError, ServeError
from repro.serve.queue import JobQueue
from repro.serve.supervisor import Supervisor

log = logging.getLogger(__name__)

SERVER_VERSION = "repro-serve/1"

#: Largest request body the server will read.
_MAX_BODY = 1 << 20

#: How long ``?follow=1`` keeps a connection at most (seconds).
_FOLLOW_MAX = 600.0


class ServeState:
    """Everything the HTTP handlers share with the daemon loop."""

    def __init__(
        self,
        queue: JobQueue,
        supervisor: Supervisor,
        max_attempts: int = 2,
        deadline: Optional[float] = None,
    ):
        self.queue = queue
        self.supervisor = supervisor
        self.max_attempts = max_attempts
        self.deadline = deadline
        self.started = time.time()
        self.draining = False
        self._drain_requested = threading.Event()
        self._abort_requested = threading.Event()
        self._lock = threading.Lock()
        self.submitted = 0
        self.shed = 0

    # -- signal plumbing (handlers set events, the loop acts) ----------
    def request_drain(self) -> None:
        self._drain_requested.set()

    def request_abort(self) -> None:
        self._drain_requested.set()
        self._abort_requested.set()

    @property
    def drain_requested(self) -> bool:
        return self._drain_requested.is_set()

    @property
    def abort_requested(self) -> bool:
        return self._abort_requested.is_set()

    @property
    def accepting(self) -> bool:
        return not self.draining and not self.drain_requested

    # -- submissions ---------------------------------------------------
    def submit(self, doc: Dict[str, Any]):
        """Validate and spool one submission document."""
        from repro.experiments.circuits import KNOWN_CIRCUITS

        if not isinstance(doc, dict):
            raise ServeError("submission body must be a JSON object")
        circuit = doc.get("circuit")
        if not isinstance(circuit, str) or circuit not in KNOWN_CIRCUITS:
            raise ServeError(
                f"unknown circuit {circuit!r} "
                f"(expected one of {', '.join(KNOWN_CIRCUITS)})"
            )
        deadline = doc.get("deadline", self.deadline)
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ServeError(f"deadline must be a positive number, got {deadline!r}")
        record = self.queue.submit(
            circuit,
            options=doc.get("options"),
            max_attempts=int(doc.get("max_attempts", self.max_attempts)),
            deadline=deadline,
        )
        with self._lock:
            self.submitted += 1
        return record

    def count_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "pid": os.getpid(),
            "uptime": round(time.time() - self.started, 3),
            "accepting": self.accepting,
            "jobs": self.queue.counts(),
            "workers": self.supervisor.stats(),
            "submitted": self.submitted,
            "shed": self.shed,
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against the shared :class:`ServeState`."""

    server_version = SERVER_VERSION
    protocol_version = "HTTP/1.0"  # close-delimited bodies, safe to stream

    @property
    def state(self) -> ServeState:
        return self.server.state  # type: ignore[attr-defined]

    # Route http.server's chatter through logging instead of stderr.
    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        log.debug("http: " + fmt, *args)

    def address_string(self):  # AF_UNIX peers have no address
        try:
            return super().address_string()
        except (IndexError, TypeError):
            return "local"

    # -- helpers -------------------------------------------------------
    def _send_json(
        self, code: int, doc: Dict[str, Any], headers: Tuple[Tuple[str, str], ...] = ()
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ServeError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc

    # -- GET -----------------------------------------------------------
    def do_GET(self):  # noqa: N802
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_json(200, self.state.health())
            elif parts == ["readyz"]:
                if self.state.accepting:
                    self._send_json(200, {"ready": True})
                else:
                    self._send_json(503, {"ready": False, "reason": "draining"})
            elif parts == ["jobs"]:
                self._send_json(
                    200,
                    {"jobs": [r.to_dict() for r in self.state.queue.list_jobs()]},
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                record = self.state.queue.get(parts[1])
                if record is None:
                    self._send_json(404, {"error": f"no job {parts[1]}"})
                else:
                    self._send_json(200, record.to_dict())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] in (
                "events",
                "metrics",
                "trace",
            ):
                self._stream_artifact(parts[1], parts[2], url.query)
            else:
                self._send_json(404, {"error": f"no route {url.path}"})
        except BrokenPipeError:
            pass
        except Exception as exc:  # never kill the handler thread
            log.exception("GET %s failed", self.path)
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass

    def _stream_artifact(self, job_id: str, kind: str, query: str) -> None:
        queue = self.state.queue
        path = {
            "events": queue.events_path(job_id),
            "metrics": queue.metrics_path(job_id),
            "trace": queue.trace_path(job_id),
        }[kind]
        follow = parse_qs(query).get("follow", ["0"])[0] not in ("0", "", "false")
        if not path.exists() and not follow:
            self._send_json(404, {"error": f"no {kind} for job {job_id}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.end_headers()
        if not follow:
            with open(path, "rb") as fh:
                self.wfile.write(fh.read())
            return
        # Tail the file until the job is terminal and fully flushed.
        offset = 0
        deadline = time.time() + _FOLLOW_MAX
        while time.time() < deadline:
            if path.exists():
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
                if chunk:
                    self.wfile.write(chunk)
                    self.wfile.flush()
                    offset += len(chunk)
                    continue
            record = self.state.queue.get(job_id)
            if record is None or record.terminal:
                break
            time.sleep(0.1)

    # -- POST ----------------------------------------------------------
    def do_POST(self):  # noqa: N802
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._submit()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._cancel(parts[1])
            else:
                self._send_json(404, {"error": f"no route {url.path}"})
        except BrokenPipeError:
            pass
        except ServeError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:
            log.exception("POST %s failed", self.path)
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass

    def _submit(self) -> None:
        if not self.state.accepting:
            self._send_json(
                503,
                {"error": "draining; not accepting jobs"},
                headers=(("Retry-After", "5"),),
            )
            return
        doc = self._read_body()
        try:
            record = self.state.submit(doc)
        except QueueFullError as exc:
            self.state.count_shed()
            self._send_json(
                429, {"error": str(exc)}, headers=(("Retry-After", "1"),)
            )
            return
        self._send_json(201, record.to_dict())

    def _cancel(self, job_id: str) -> None:
        record = self.state.queue.cancel_queued(job_id)
        if record is not None:
            self._send_json(200, {"canceled": "queued", "id": job_id})
            return
        if self.state.supervisor.cancel(job_id):
            self._send_json(200, {"canceled": "running", "id": job_id})
            return
        existing = self.state.queue.get(job_id)
        if existing is None:
            self._send_json(404, {"error": f"no job {job_id}"})
        else:
            self._send_json(
                409, {"error": f"job {job_id} is already {existing.state}"}
            )


class _UnixHTTPServer(ThreadingHTTPServer):
    """HTTP over a Unix domain socket (single-host deployments)."""

    address_family = socket.AF_UNIX

    def server_bind(self):
        path = self.server_address
        if isinstance(path, str) and os.path.exists(path):
            os.unlink(path)  # stale socket from a dead daemon
        self.socket.bind(path)
        self.server_name = "repro-serve"
        self.server_port = 0


def build_http_server(
    state: ServeState,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
):
    """Bind the HTTP front (Unix socket when ``socket_path`` is given)."""
    if socket_path:
        Path(socket_path).parent.mkdir(parents=True, exist_ok=True)
        httpd = _UnixHTTPServer(socket_path, _Handler)
    else:
        httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.state = state  # type: ignore[attr-defined]
    return httpd


def serve_forever(
    state: ServeState,
    httpd,
    poll_interval: float = 0.05,
    drain_grace: float = 30.0,
    term_grace: float = 10.0,
    max_ticks: Optional[int] = None,
) -> int:
    """The daemon main loop; returns the process exit code.

    ``max_ticks`` bounds the loop for tests; production runs until a
    drain or abort is requested via :class:`ServeState`.
    """
    supervisor = state.supervisor
    http_thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": poll_interval},
        name="repro-serve-http",
        daemon=True,
    )
    http_thread.start()
    ticks = 0
    try:
        while not state.drain_requested:
            supervisor.tick()
            ticks += 1
            if max_ticks is not None and ticks >= max_ticks:
                state.request_drain()
                break
            time.sleep(poll_interval)
        return _drain(state, poll_interval, drain_grace, term_grace)
    finally:
        httpd.shutdown()
        httpd.server_close()
        http_thread.join(timeout=5.0)
        addr = getattr(httpd, "server_address", None)
        if isinstance(addr, str):
            try:
                os.unlink(addr)
            except OSError:
                pass


def _drain(
    state: ServeState,
    poll_interval: float,
    drain_grace: float,
    term_grace: float,
) -> int:
    """Stop accepting, settle running jobs, leave ``running/`` empty."""
    supervisor = state.supervisor
    state.draining = True
    supervisor.accepting_claims = False
    if state.abort_requested:
        aborted = supervisor.abort()
        log.warning("hard abort: requeued %s", aborted or "nothing")
        return EXIT_INTERRUPTED
    log.info(
        "draining: %d running job(s), grace %gs",
        len(supervisor.running),
        drain_grace,
    )
    deadline = time.time() + drain_grace
    while not supervisor.idle and time.time() < deadline:
        if state.abort_requested:
            supervisor.abort()
            return EXIT_INTERRUPTED
        supervisor.tick()
        time.sleep(poll_interval)
    if not supervisor.idle:
        # Grace expired: ask workers to checkpoint and exit (4); their
        # jobs requeue with the attempt refunded.
        supervisor.signal_workers(signal.SIGTERM)
        deadline = time.time() + term_grace
        while not supervisor.idle and time.time() < deadline:
            supervisor.tick()
            time.sleep(poll_interval)
    if not supervisor.idle:
        supervisor.abort()
        return EXIT_INTERRUPTED
    supervisor.tick()  # final reap so terminal states are spooled
    return EXIT_OK


def serve_main(args) -> int:
    """Entry point behind ``python -m repro serve``."""
    from repro.resilience.faults import FaultInjector, ServeFault

    if (args.socket is None) == (args.port is None):
        print("error: serve needs exactly one of --socket or --port", file=sys.stderr)
        return EXIT_ERROR
    faults = None
    if args.inject_fault:
        faults = FaultInjector()
        for value in args.inject_fault:
            try:
                faults.arm(ServeFault.from_env(value))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_ERROR
    try:
        queue = JobQueue(args.spool, capacity=args.queue_limit, faults=faults)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    recovered = queue.recover()
    if recovered:
        print(
            f"recovered {len(recovered)} interrupted job(s): "
            + ", ".join(recovered),
            file=sys.stderr,
        )
    from repro.resilience.policy import StagePolicy

    supervisor = Supervisor(
        queue,
        workers=args.workers,
        policy=StagePolicy(max_attempts=args.max_attempts, timeout=args.deadline),
        heartbeat_timeout=args.heartbeat_timeout,
        faults=faults,
    )
    state = ServeState(
        queue,
        supervisor,
        max_attempts=args.max_attempts,
        deadline=args.deadline,
    )
    try:
        httpd = build_http_server(
            state, socket_path=args.socket, host=args.host, port=args.port or 0
        )
    except OSError as exc:
        print(f"error: cannot bind: {exc}", file=sys.stderr)
        return EXIT_ERROR

    def _on_sigterm(signum, frame):
        state.request_drain()

    def _on_sigint(signum, frame):
        if state.drain_requested:
            state.request_abort()
        else:
            state.request_drain()

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, _on_sigint)

    where = args.socket or f"http://{args.host}:{httpd.server_address[1]}"
    print(
        f"repro-serve: listening on {where}, spool {queue.root}, "
        f"{supervisor.workers} worker(s), queue limit {queue.capacity}",
        file=sys.stderr,
        flush=True,
    )
    rc = serve_forever(
        state,
        httpd,
        poll_interval=args.poll_interval,
        drain_grace=args.drain_grace,
    )
    counts = queue.counts()
    print(
        f"repro-serve: exiting {rc} "
        f"(done {counts['done']}, failed {counts['failed']}, "
        f"queued {counts['queued']}, running {counts['running']})",
        file=sys.stderr,
    )
    return rc
