"""Shared CLI plumbing: exit codes and interrupt handling.

Both ``python -m repro`` and the standalone harness entry points
(``python -m repro.experiments.table1``) speak the same exit-code
contract:

* ``0`` — success (``plan``: converged; ``table1``: >= 1 circuit ok);
* ``1`` — completed but unsatisfied (not converged / every circuit
  failed);
* ``2`` — usage or flow error;
* ``3`` — target period infeasible (``plan`` only);
* ``4`` — interrupted by SIGINT/SIGTERM, progress checkpointed where a
  checkpoint directory was given; rerun with ``--resume`` to continue;
* ``5`` — verification failed: the flow completed but the independent
  certificate checkers (:mod:`repro.verify`) rejected a result
  (``plan --verify``, ``table1 --verify``, ``verify <target>``);
* ``6`` — busy: the service shed the request (``submit`` against a
  full queue — HTTP 429 — or a draining daemon — HTTP 503); nothing
  was spooled, resubmit later.

:func:`install_interrupt_handlers` converts SIGINT/SIGTERM into
:class:`~repro.errors.InterruptedRunError`, so ``finally`` blocks run
on the way out — the in-flight trace is flushed and committed
checkpoints stay durable — and the command exits with
:data:`EXIT_INTERRUPTED` instead of dying mid-write.
"""

from __future__ import annotations

import signal

from repro.errors import InterruptedRunError

EXIT_OK = 0
EXIT_NOT_CONVERGED = 1
EXIT_ERROR = 2
EXIT_INFEASIBLE = 3
EXIT_INTERRUPTED = 4
EXIT_VERIFY_FAILED = 5
EXIT_BUSY = 6


def install_interrupt_handlers() -> None:
    """Route SIGINT/SIGTERM through :class:`InterruptedRunError`.

    Best-effort: silently a no-op when not on the main thread or on
    platforms without the signal (the default behaviour then applies).
    """

    def _handler(signum, frame):
        raise InterruptedRunError(signum)

    for sig in (signal.SIGINT, getattr(signal, "SIGTERM", None)):
        if sig is None:
            continue
        try:
            signal.signal(sig, _handler)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
