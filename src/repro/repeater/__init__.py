"""Repeater planning under the maximum-interval constraint."""

from repro.repeater.insertion import (
    BufferedConnection,
    Segment,
    buffer_routed_nets,
    insert_repeaters,
)
from repro.repeater.vanginneken import (
    BufferType,
    TreeBuffering,
    buffer_all_trees,
    buffer_routed_nets_tree,
    buffer_tree,
    default_library,
)

__all__ = [
    "Segment",
    "BufferedConnection",
    "insert_repeaters",
    "buffer_routed_nets",
    "TreeBuffering",
    "BufferType",
    "default_library",
    "buffer_tree",
    "buffer_all_trees",
    "buffer_routed_nets_tree",
]
