"""Repeater planning: DP insertion along routed paths under ``L_max``.

Following Alpert et al.'s practical methodology (the paper's reference
[1]), repeaters are inserted along each routed point-to-point global
connection so that no unbuffered interval exceeds ``L_max`` (a signal
integrity constraint) while minimising Elmore delay. A small penalty
steers repeaters away from tiles whose insertion capacity is already
exhausted; chosen repeaters then consume tile capacity.

The resulting segmentation is exactly the paper's *interconnect unit*
decomposition (Section 3.2): segment ``j`` becomes one fixed-delay
unit located at the segment's driving end (the repeater position, or
the driver pin for the first segment).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.errors import RoutingError
from repro.tech.params import DEFAULT_TECH, Technology
from repro.tiles.grid import Cell, TileGrid

#: Delay penalty (ns) for placing a repeater in a full tile.
FULL_TILE_PENALTY = 0.5


@dataclasses.dataclass(frozen=True)
class Segment:
    """One buffered wire segment of a global connection."""

    start_cell: Cell
    end_cell: Cell
    length_mm: float
    delay_ns: float
    driven_by_repeater: bool


@dataclasses.dataclass
class BufferedConnection:
    """Repeater-planning result for one point-to-point connection."""

    driver: str
    sink: str
    path: List[Cell]
    segments: List[Segment]

    @property
    def n_repeaters(self) -> int:
        return sum(1 for s in self.segments if s.driven_by_repeater)

    @property
    def total_delay(self) -> float:
        return sum(s.delay_ns for s in self.segments)

    @property
    def length_mm(self) -> float:
        return sum(s.length_mm for s in self.segments)


def insert_repeaters(
    path: Sequence[Cell],
    grid: TileGrid,
    tech: Technology = DEFAULT_TECH,
    driver: str = "u",
    sink: str = "v",
    reserve: bool = True,
) -> BufferedConnection:
    """Buffer one routed path.

    Dynamic program over the path's cells: ``dp[i]`` is the best delay
    of covering the path prefix up to cell ``i`` with a
    repeater/endpoint at ``i``, with inter-repeater spans capped at
    ``tech.l_max_tiles``. When ``reserve`` is set, the chosen repeater
    area is consumed from the grid.

    Raises :class:`RoutingError` on an empty path.
    """
    if not path:
        raise RoutingError("cannot buffer an empty path")
    n = len(path)
    if n == 1:
        segment = Segment(path[0], path[0], 0.0, 0.0, driven_by_repeater=False)
        return BufferedConnection(driver, sink, list(path), [segment])

    l_max = tech.l_max_tiles
    size = grid.tile_size

    def repeater_penalty(i: int) -> float:
        region = grid.region_of_cell[path[i]]
        return FULL_TILE_PENALTY if grid.remaining(region) < tech.repeater_area else 0.0

    inf = float("inf")
    dp = [inf] * n
    parent = [-1] * n
    dp[0] = 0.0
    for i in range(1, n):
        lo = max(0, i - l_max)
        for j in range(lo, i):
            if dp[j] == inf:
                continue
            length = (i - j) * size
            if j == 0:
                seg_delay = tech.wire_delay(length, tech.c_repeater)
            else:
                seg_delay = tech.segment_delay(length)
            cost = dp[j] + seg_delay
            if i < n - 1:
                cost += repeater_penalty(i)
            if cost < dp[i]:
                dp[i] = cost
                parent[i] = j
    if dp[n - 1] == inf:  # pragma: no cover - l_max >= 1 precludes this
        raise RoutingError("repeater DP found no cover")

    # Recover breakpoints (driver, repeaters..., sink).
    breakpoints = [n - 1]
    while breakpoints[-1] != 0:
        breakpoints.append(parent[breakpoints[-1]])
    breakpoints.reverse()

    segments: List[Segment] = []
    for a, b in zip(breakpoints, breakpoints[1:]):
        length = (b - a) * size
        driven = a != 0
        delay = (
            tech.segment_delay(length)
            if driven
            else tech.wire_delay(length, tech.c_repeater)
        )
        segments.append(
            Segment(
                start_cell=path[a],
                end_cell=path[b],
                length_mm=length,
                delay_ns=delay,
                driven_by_repeater=driven,
            )
        )
        if driven and reserve:
            grid.reserve(grid.region_of_cell[path[a]], tech.repeater_area)
    return BufferedConnection(driver, sink, list(path), segments)


def buffer_routed_nets(
    routed: Dict[str, "RoutedNet"],
    grid: TileGrid,
    tech: Technology = DEFAULT_TECH,
) -> Dict[Tuple[str, str], BufferedConnection]:
    """Buffer every (driver, sink) path of every routed net."""
    out: Dict[Tuple[str, str], BufferedConnection] = {}
    for routed_net in routed.values():
        driver = routed_net.net.driver
        for sink, path in routed_net.paths.items():
            out[(driver, sink)] = insert_repeaters(
                path, grid, tech, driver=driver, sink=sink
            )
    return out
