"""Van Ginneken buffer insertion on routed Steiner trees.

:mod:`repro.repeater.insertion` buffers each (driver, sink) path
independently — simple and exactly what interconnect-unit expansion
needs. For multi-fanout nets, the canonical algorithm (van Ginneken,
ISCAS 1990; the basis of Alpert et al.'s practical methodology, the
paper's reference [1]) does better: it walks the routed *tree*
bottom-up, keeping at every point the Pareto set of
``(downstream capacitance, required arrival time)`` candidates, so
buffers on a shared trunk serve several sinks at once.

This implementation adds the paper's ``L_max`` signal-integrity
constraint: every candidate also tracks the longest unbuffered
downstream span, and candidates whose span would exceed ``L_max`` are
discarded, so a buffer is *forced* before any run gets too long.

Output: buffer cells plus the achieved worst-sink delay, for use as an
alternative repeater-planning backend and for the tree-vs-path
comparison bench.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RoutingError
from repro.route.router import RoutedNet
from repro.tech.params import DEFAULT_TECH, Technology
from repro.tiles.grid import Cell

_EPS = 1e-12


@dataclasses.dataclass(frozen=True)
class BufferType:
    """One buffer cell in the insertion library."""

    name: str
    intrinsic_delay: float  # ns
    resistance: float  # kOhm
    capacitance: float  # pF (input)
    area: float  # mm^2


def default_library(tech: Technology, sizes: Sequence[int] = (1, 2, 4)) -> List[BufferType]:
    """Scaled buffer library from the technology's unit repeater.

    A size-``k`` buffer has ``k`` times the drive (resistance / k),
    ``k`` times the input capacitance and area; intrinsic delay is
    size-independent to first order.
    """
    return [
        BufferType(
            name=f"buf_x{k}",
            intrinsic_delay=tech.repeater_delay,
            resistance=tech.r_repeater / k,
            capacitance=tech.c_repeater * k,
            area=tech.repeater_area * k,
        )
        for k in sizes
    ]


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One non-dominated buffering option for a subtree.

    Attributes:
        cap: Capacitance seen looking into the subtree (pF).
        req: Required arrival time at this point (ns; higher = better,
            sinks start at 0, wire/buffer delays subtract).
        span: Longest unbuffered distance (mm) from this point down to
            the nearest buffer or sink on any path.
        buffers: Buffer locations chosen in this subtree.
    """

    cap: float
    req: float
    span: float
    buffers: frozenset


@dataclasses.dataclass
class TreeBuffering:
    """Result of buffering one net's routed tree.

    ``buffers`` holds ``(cell, buffer_name)`` pairs when a multi-size
    library is used (the default single-size library reports the plain
    unit repeater everywhere).
    """

    net_name: str
    buffers: Set[Tuple[Cell, str]]
    worst_delay: float  # driver-to-critical-sink Elmore delay

    @property
    def n_buffers(self) -> int:
        return len(self.buffers)

    @property
    def buffer_cells(self) -> Set[Cell]:
        return {cell for cell, _name in self.buffers}

    def total_area(self, library: Sequence["BufferType"]) -> float:
        by_name = {b.name: b.area for b in library}
        return sum(by_name[name] for _cell, name in self.buffers)


def _tree_structure(
    routed: RoutedNet,
) -> Tuple[Dict[Cell, List[Cell]], Cell, Dict[Cell, int]]:
    """Children map (rooted at the driver cell) + per-cell sink count.

    Maze-embedded per-sink paths can overlap and re-merge, so their
    union is not always a tree; a BFS spanning tree from the driver
    keeps every sink reachable and gives the bottom-up recursion a
    well-defined structure.
    """
    from collections import deque

    root = routed.net.driver_cell
    adjacency: Dict[Cell, Set[Cell]] = {}
    for path in routed.paths.values():
        for a, b in zip(path, path[1:]):
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
    children: Dict[Cell, List[Cell]] = {}
    seen = {root}
    queue = deque([root])
    while queue:
        cell = queue.popleft()
        for nxt in sorted(adjacency.get(cell, ())):
            if nxt not in seen:
                seen.add(nxt)
                children.setdefault(cell, []).append(nxt)
                queue.append(nxt)
    sink_count: Dict[Cell, int] = {}
    for _sink, path in routed.paths.items():
        sink_count[path[-1]] = sink_count.get(path[-1], 0) + 1
    return children, root, sink_count


def _prune(candidates: List[Candidate]) -> List[Candidate]:
    """Keep the (cap, req) Pareto frontier: lower cap, higher req."""
    candidates.sort(key=lambda c: (c.cap, -c.req))
    kept: List[Candidate] = []
    best_req = -float("inf")
    for cand in candidates:
        if cand.req > best_req + _EPS:
            kept.append(cand)
            best_req = cand.req
    return kept


def buffer_tree(
    routed: RoutedNet,
    tech: Technology = DEFAULT_TECH,
    tile_size: Optional[float] = None,
    library: Optional[Sequence[BufferType]] = None,
) -> TreeBuffering:
    """Van Ginneken buffering of one routed net under ``L_max``.

    ``library`` selects the buffer cells considered at each candidate
    position (default: the technology's unit repeater only; pass
    :func:`default_library` for multi-size insertion).

    Raises :class:`RoutingError` when no candidate satisfies ``L_max``
    (cannot happen for ``l_max >= tile_size``).
    """
    size = tile_size if tile_size is not None else tech.tile_size
    l_max = tech.l_max_tiles * size
    if library is None:
        library = default_library(tech, sizes=(1,))
    children, root, sink_count = _tree_structure(routed)

    def options(cell: Cell) -> List[Candidate]:
        # Merge children (each child contributes wire + its options).
        kids = children.get(cell, [])
        merged: List[Candidate] = [
            Candidate(cap=0.0, req=float("inf"), span=0.0, buffers=frozenset())
        ]
        for child in kids:
            child_opts = []
            for opt in options(child):
                # wire from cell to child (one tile)
                new_span = opt.span + size
                if new_span > l_max + _EPS:
                    continue
                delay = tech.r_wire * size * (tech.c_wire * size / 2.0 + opt.cap)
                child_opts.append(
                    Candidate(
                        cap=opt.cap + tech.c_wire * size,
                        req=opt.req - delay,
                        span=new_span,
                        buffers=opt.buffers,
                    )
                )
            if not child_opts:
                raise RoutingError(
                    f"no L_max-feasible buffering below cell {child}"
                )
            merged = [
                Candidate(
                    cap=a.cap + b.cap,
                    req=min(a.req, b.req),
                    span=max(a.span, b.span),
                    buffers=a.buffers | b.buffers,
                )
                for a in merged
                for b in _prune(child_opts)
            ]
            merged = _prune(merged)

        # Sink load at this cell (flip-flop / gate input pins).
        if cell in sink_count:
            merged = [
                Candidate(
                    cap=c.cap + sink_count[cell] * tech.c_repeater,
                    req=min(c.req, 0.0),
                    span=c.span,
                    buffers=c.buffers,
                )
                for c in merged
            ]

        # Option: place a buffer (of any library size) at this cell.
        with_buffer = []
        for c in merged:
            for buf in library:
                delay = buf.intrinsic_delay + buf.resistance * c.cap
                with_buffer.append(
                    Candidate(
                        cap=buf.capacitance,
                        req=c.req - delay,
                        span=0.0,
                        buffers=c.buffers | {(cell, buf.name)},
                    )
                )
        return _prune(merged + with_buffer)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(routed.cells) + 100))
    try:
        root_opts = options(root)
    finally:
        sys.setrecursionlimit(old_limit)
    if not root_opts:
        raise RoutingError(f"net {routed.net.name}: no feasible buffering")
    # Driver drives the chosen option through its output resistance.
    best = max(root_opts, key=lambda c: c.req - tech.r_repeater * c.cap)
    worst_delay = -(best.req - tech.r_repeater * best.cap)
    return TreeBuffering(
        net_name=routed.net.name,
        buffers=set(best.buffers),
        worst_delay=max(0.0, worst_delay),
    )


def buffer_all_trees(
    routed_nets: Dict[str, RoutedNet],
    tech: Technology = DEFAULT_TECH,
) -> Dict[str, TreeBuffering]:
    """Van Ginneken buffering for every routed net."""
    return {
        name: buffer_tree(net, tech) for name, net in routed_nets.items()
    }


def tree_buffering_to_connections(
    routed: RoutedNet,
    buffering: TreeBuffering,
    grid,
    tech: Technology = DEFAULT_TECH,
    reserve: bool = True,
):
    """Convert a tree-buffering result to per-(driver, sink) connections.

    Interconnect-unit expansion consumes per-sink segmentations
    (:class:`~repro.repeater.insertion.BufferedConnection`); this walks
    each sink's path and splits it at the tree's buffer cells, charging
    each buffer's area once (shared buffers are shared).
    """
    from repro.repeater.insertion import BufferedConnection, Segment

    by_cell = {}
    for cell, name in buffering.buffers:
        by_cell[cell] = name
    areas = {b.name: b.area for b in default_library(tech, sizes=(1, 2, 4))}
    areas.setdefault("buf_x1", tech.repeater_area)

    charged = set()
    out = {}
    for sink, path in routed.paths.items():
        breakpoints = [0]
        for i, cell in enumerate(path[1:-1], start=1):
            if cell in by_cell:
                breakpoints.append(i)
        if len(path) > 1:
            breakpoints.append(len(path) - 1)
        segments = []
        for a, b in zip(breakpoints, breakpoints[1:]):
            length = (b - a) * grid.tile_size
            driven = a != 0
            delay = (
                tech.segment_delay(length)
                if driven
                else tech.wire_delay(length, tech.c_repeater)
            )
            segments.append(
                Segment(
                    start_cell=path[a],
                    end_cell=path[b],
                    length_mm=length,
                    delay_ns=delay,
                    driven_by_repeater=driven,
                )
            )
            if driven and reserve and path[a] not in charged:
                charged.add(path[a])
                area = areas.get(by_cell.get(path[a], "buf_x1"), tech.repeater_area)
                grid.reserve(grid.region_of_cell[path[a]], area)
        if not segments:
            segments = [Segment(path[0], path[0], 0.0, 0.0, False)]
        out[(routed.net.driver, sink)] = BufferedConnection(
            driver=routed.net.driver,
            sink=sink,
            path=list(path),
            segments=segments,
        )
    return out


def buffer_routed_nets_tree(
    routed_nets: Dict[str, RoutedNet],
    grid,
    tech: Technology = DEFAULT_TECH,
    library: Optional[Sequence[BufferType]] = None,
):
    """Tree-buffering backend with the same contract as
    :func:`repro.repeater.insertion.buffer_routed_nets`."""
    out = {}
    for routed in routed_nets.values():
        buffering = buffer_tree(routed, tech, library=library)
        out.update(
            tree_buffering_to_connections(routed, buffering, grid, tech)
        )
    return out
