"""Functional-equivalence certificates via bounded random simulation.

Retiming legality (non-negative weights, fixed host labels) implies
behavioural equivalence *by construction*; this module checks it *by
observation* instead — gate-level 3-valued simulation of the original
and retimed netlists on a shared random stimulus — and wraps the
verdict in the same :class:`~repro.verify.certificate.Certificate`
shape as the structural checkers. Bounded simulation cannot prove
equivalence, only refute it, so this is the belt to the braces.
"""

from __future__ import annotations

from typing import Mapping

from repro.netlist.retime_bench import retime_bench
from repro.netlist.sim import (
    LogicSimulator,
    equivalent_streams,
    random_input_stream,
)
from repro.verify.certificate import (
    Certificate,
    failed_certificate,
    passed_certificate,
)


def equivalence_certificate(
    netlist,
    labels: Mapping[str, int],
    n_cycles: int = 64,
    seed: int = 5,
) -> Certificate:
    """Simulate ``netlist`` against its retiming by ``labels``.

    Returns an ``equivalence`` certificate: ok when every primary
    output matches on all ``n_cycles`` cycles of a seeded random input
    stream (unsettled X cycles excluded, as retiming shifts the
    initialisation transient).
    """
    subject = f"{netlist.name}/{n_cycles} cycles"
    transformed = retime_bench(netlist, labels)
    stream = random_input_stream(netlist, n_cycles, seed=seed)
    ok = equivalent_streams(
        LogicSimulator(netlist).run(stream),
        LogicSimulator(transformed).run(stream),
        outputs_a=netlist.outputs,
        outputs_b=transformed.outputs,
        require_settled=False,
    )
    if not ok:
        return failed_certificate(
            "equivalence",
            subject,
            [
                f"outputs diverge within {n_cycles} simulated cycles "
                f"(seed {seed})"
            ],
            n_cycles=n_cycles,
            seed=seed,
        )
    return passed_certificate(
        "equivalence", subject, n_cycles=n_cycles, seed=seed
    )
