"""Independent arrival-time computation for period certification.

The solvers derive the clock period from W/D matrices (scipy-backed,
warm-started); this module recomputes it from scratch with a plain
Kahn traversal of the *register-free* subgraph — ``Δ(v) = d(v) +
max Δ(u)`` over zero-weight in-edges, exactly the Leiserson–Saxe
``Δ`` recurrence — so a period certificate never trusts the machinery
it is checking.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.errors import NetlistError


def combinational_arrivals(graph) -> Dict[str, float]:
    """Longest register-free path delay *ending at* each unit.

    Returns arrivals for every unit reachable in a topological order
    of the zero-weight subgraph. Units on a zero-weight (combinational)
    cycle are absent from the result — compare ``len`` against the
    unit count to detect that case.
    """
    indeg: Dict[str, int] = {u: 0 for u in graph.units()}
    preds: Dict[str, List[str]] = {u: [] for u in indeg}
    succs: Dict[str, List[str]] = {u: [] for u in indeg}
    for (u, v, _key), w in graph.connections():
        if w == 0:
            indeg[v] += 1
            preds[v].append(u)
            succs[u].append(v)

    queue = deque(u for u, d in indeg.items() if d == 0)
    arrival: Dict[str, float] = {}
    while queue:
        u = queue.popleft()
        best = 0.0
        for p in preds[u]:
            if arrival[p] > best:
                best = arrival[p]
        arrival[u] = graph.delay(u) + best
        for v in succs[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    return arrival


def critical_period(graph) -> float:
    """Clock period of ``graph``: its longest register-free path delay.

    Raises:
        NetlistError: The zero-weight subgraph has a cycle (a
            combinational loop), so no period is defined.
    """
    arrival = combinational_arrivals(graph)
    if len(arrival) != graph.num_units:
        stuck = sorted(set(graph.units()) - set(arrival))
        raise NetlistError(
            f"combinational (zero-weight) cycle through {stuck[:5]}"
        )
    return max(arrival.values(), default=0.0)


def late_units(
    graph, period: float, tol: float = 1e-6
) -> Tuple[Dict[str, float], List[str]]:
    """Arrivals plus the units whose arrival exceeds ``period``.

    The late list is sorted worst-first; a unit stuck on a
    combinational cycle never gets an arrival and is reported by the
    caller via the length mismatch.
    """
    arrival = combinational_arrivals(graph)
    late = [u for u, a in arrival.items() if a > period + tol]
    late.sort(key=lambda u: -arrival[u])
    return arrival, late
