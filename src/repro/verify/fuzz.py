"""Differential fuzzing of the verification layer itself.

A verifier is only as trustworthy as its error rates, so this harness
measures both directions on a population of random circuits:

* **no false rejects** — a freshly planned outcome must certify clean
  (every certificate passes);
* **no false accepts** — after a :class:`~repro.resilience.faults.ResultFault`
  corrupts one claim, verification must fail, and the failing
  certificates must come from *exactly* the checker that owns the
  corrupted claim (:data:`~repro.resilience.faults.RESULT_FAULT_OWNER`)
  — a fault bleeding into other checkers means the ownership contract
  (and therefore fault localisation) is broken.

Everything is seeded: the same ``(n_circuits, seed)`` always generates
the same circuits, plans, and injected faults, so a CI failure here is
reproducible verbatim.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.netlist.generate import random_circuit
from repro.resilience.faults import (
    RESULT_FAULT_KINDS,
    RESULT_FAULT_OWNER,
    ResultFault,
)
from repro.verify.certificate import VerificationReport
from repro.verify.plan import verify_outcome


@dataclasses.dataclass
class FuzzCase:
    """One circuit's differential verdict pair.

    Attributes:
        circuit: Generated circuit name.
        seed: RNG seed the circuit (and its plan) derived from.
        fault_kind: The :class:`ResultFault` kind injected after the
            clean pass.
        fault_note: What the fault actually mutated.
        clean_ok: The uncorrupted outcome certified clean.
        corrupt_failed: Checker names that failed on the corrupted
            outcome.
        expected_owner: Checker that must be exactly the failing set.
    """

    circuit: str
    seed: int
    fault_kind: str
    fault_note: str
    clean_ok: bool
    corrupt_failed: Tuple[str, ...]
    expected_owner: str
    clean_report: VerificationReport = dataclasses.field(repr=False)
    corrupt_report: VerificationReport = dataclasses.field(repr=False)

    @property
    def passed(self) -> bool:
        """True when both directions behaved: clean accepted, corrupt
        rejected by exactly the owning checker."""
        return self.clean_ok and self.corrupt_failed == (self.expected_owner,)

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (
            f"{status} {self.circuit} (seed {self.seed}): "
            f"clean={'pass' if self.clean_ok else 'REJECTED'}, "
            f"{self.fault_kind} -> "
            f"{'/'.join(self.corrupt_failed) or 'ACCEPTED'} "
            f"(owner {self.expected_owner})"
        )


def differential_fuzz(
    n_circuits: int = 20,
    seed: int = 0,
    kinds: Sequence[str] = RESULT_FAULT_KINDS,
    max_iterations: int = 1,
    progress=None,
    **plan_overrides,
) -> List[FuzzCase]:
    """Plan, certify, corrupt, and re-certify ``n_circuits`` circuits.

    Circuit shapes cycle through a small family of sizes, fault kinds
    cycle through ``kinds``, and every fourth plan also runs the
    min-area baseline so both retiming targets get fuzzed. Returns one
    :class:`FuzzCase` per circuit; a correct verifier yields
    ``all(c.passed for c in cases)``.

    ``progress``, if given, is called with each finished case (the CLI
    uses it to stream one line per circuit).
    """
    from repro.core.planner import plan_interconnect

    cases: List[FuzzCase] = []
    for i in range(n_circuits):
        rng_seed = seed * 1009 + i
        kind = kinds[i % len(kinds)]
        graph = random_circuit(
            f"fuzz{i}",
            n_units=22 + (i % 5) * 6,
            n_ffs=6 + (i % 4) * 3,
            seed=rng_seed,
        )
        overrides = dict(plan_overrides)
        overrides.setdefault("seed", rng_seed)
        overrides.setdefault("floorplan_iterations", 120)
        overrides.setdefault("run_baseline", i % 4 == 0)
        outcome = plan_interconnect(
            graph, max_iterations=max_iterations, **overrides
        )

        clean_report = verify_outcome(outcome)
        fault = ResultFault(kind)
        try:
            note = fault.apply(outcome)
        except ValueError as exc:
            # e.g. the iteration degraded all the way to infeasible;
            # nothing to corrupt means nothing to differentiate.
            note = f"not applicable ({exc})"
            corrupt_report = clean_report
            corrupt_failed: Tuple[str, ...] = (RESULT_FAULT_OWNER[kind],)
        else:
            corrupt_report = verify_outcome(outcome)
            corrupt_failed = corrupt_report.failed_checkers()

        case = FuzzCase(
            circuit=graph.name,
            seed=rng_seed,
            fault_kind=kind,
            fault_note=note,
            clean_ok=clean_report.ok,
            corrupt_failed=corrupt_failed,
            expected_owner=RESULT_FAULT_OWNER[kind],
            clean_report=clean_report,
            corrupt_report=corrupt_report,
        )
        cases.append(case)
        if progress is not None:
            progress(case)
    return cases


def fuzz_summary(cases: Sequence[FuzzCase]) -> str:
    """One-line verdict over a finished fuzz run."""
    failed = [c for c in cases if not c.passed]
    if not failed:
        return (
            f"differential fuzz: {len(cases)} circuits, "
            "0 false accepts, 0 false rejects"
        )
    return (
        f"differential fuzz: FAILED on {len(failed)} of {len(cases)} "
        f"circuits ({', '.join(c.circuit for c in failed[:6])})"
    )
