"""Certificate checkers for one planning iteration.

Each checker re-derives one family of claims from first principles and
owns it exclusively — the ownership contract the differential fuzz
harness enforces:

* ``retiming`` — legality of the retiming labels and consistency of
  the stored retimed graph with them (fresh pass, cycle conservation,
  register total);
* ``period``   — period ordering, ``T_init`` re-derivation, and
  ``Δ(v) <= T_clk`` on the stored retimed graph, via the independent
  arrival computation in :mod:`repro.verify.timing`. Degraded
  iterations certify against the *achieved* ``t_clk``, never the
  infeasible ``t_clk_requested``;
* ``area``     — the per-tile LAC accounting (``ff_count``,
  ``violations``, ``N_FOA``/``N_F``/``N_FN``) re-summed from the
  stored graph against the tile grid. Remaining capacity is taken
  from the audited repeater reservation snapshot, so a corrupted
  live grid is the repeater checker's finding, not this one's;
* ``repeater`` — the grid's live ``used`` areas equal the snapshot
  taken at the repeater stage, and (path backend) the total equals
  ``n_repeaters * tech.repeater_area``;
* ``routing``  — the congestion summary re-counted per tile cell from
  the recorded usage map against PathFinder's track capacities.

Checkers duck-type the iteration: outcomes restored from old
checkpoints (or rebuilt from audit JSON) that lack the newer audit
fields get *skipped* certificates, visible but not failing.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.netlist.graph import INTERCONNECT
from repro.retime.expand import IO_REGION
from repro.route.router import TRACKS
from repro.verify.certificate import (
    Certificate,
    failed_certificate,
    passed_certificate,
    skipped_certificate,
)
from repro.verify.retiming import (
    check_retiming_labels,
    cycle_conservation_witnesses,
    derived_total_flip_flops,
)
from repro.verify.timing import combinational_arrivals, late_units

_TOL = 1e-6
_AREA_TOL = 1e-6


def _targets(iteration) -> Iterator[Tuple[str, object, object]]:
    """The iteration's retiming targets: ``(tag, result, report)``."""
    min_area = getattr(iteration, "min_area", None)
    if min_area is not None:
        yield "min-area", min_area.result, min_area.report
    lac = getattr(iteration, "lac", None)
    if lac is not None:
        yield "LAC", lac.retiming, lac.report


def iteration_certificates(
    iteration,
    tech,
    repeater_backend: Optional[str] = None,
) -> List[Certificate]:
    """Every certificate for one iteration, in ownership order."""
    subject = f"iteration {iteration.index}"
    if iteration.infeasible:
        return [
            skipped_certificate(
                "period",
                subject,
                "iteration marked infeasible; no retiming to certify",
            )
        ]
    certs = [check_periods(iteration)]
    for tag, result, report in _targets(iteration):
        certs.append(check_retiming(iteration, tag, result))
        certs.append(check_target_period(iteration, tag, result))
        certs.append(check_area(iteration, tag, result, report, tech))
    certs.append(check_repeaters(iteration, tech, repeater_backend))
    certs.append(check_routing(iteration))
    return certs


# ----------------------------------------------------------------------
# period
# ----------------------------------------------------------------------
def check_periods(iteration) -> Certificate:
    """Ordering ``T_min <= T_clk <= T_init`` and ``T_init`` re-derived."""
    subject = f"iteration {iteration.index}"
    witnesses: List[str] = []
    t_min, t_clk, t_init = iteration.t_min, iteration.t_clk, iteration.t_init
    if not (t_min <= t_clk + _TOL and t_clk <= t_init + _TOL):
        witnesses.append(
            f"period ordering broken: T_min={t_min:.6g} T_clk={t_clk:.6g} "
            f"T_init={t_init:.6g}"
        )
    expanded = iteration.expanded.graph
    arrival = combinational_arrivals(expanded)
    if len(arrival) != expanded.num_units:
        witnesses.append("expanded graph has a combinational cycle")
    else:
        fresh = max(arrival.values(), default=0.0)
        if abs(fresh - t_init) > _TOL:
            witnesses.append(
                f"reported T_init={t_init:.6g} != re-derived expanded-graph "
                f"period {fresh:.6g}"
            )
    requested = getattr(iteration, "t_clk_requested", None)
    if getattr(iteration, "degraded", False):
        if requested is None:
            witnesses.append("degraded iteration records no requested period")
        elif t_clk + _TOL < requested:
            witnesses.append(
                f"degraded T_clk={t_clk:.6g} below the requested "
                f"{requested:.6g} (degradation only relaxes upward)"
            )
    if witnesses:
        return failed_certificate("period", subject, witnesses)
    return passed_certificate(
        "period", subject, t_min=t_min, t_clk=t_clk, t_init=t_init
    )


def check_target_period(iteration, tag: str, result) -> Certificate:
    """``Δ(v) <= T_clk`` on the stored retimed graph (achieved period)."""
    subject = f"iteration {iteration.index}/{tag}"
    stored = getattr(result, "graph", None)
    if stored is None:
        return skipped_certificate(
            "period", subject, "no stored retimed graph to time"
        )
    t_clk = iteration.t_clk
    arrival, late = late_units(stored, t_clk, tol=_TOL)
    witnesses: List[str] = []
    if len(arrival) != stored.num_units:
        witnesses.append("retimed graph has a combinational cycle")
    witnesses += [
        f"{u}: arrival {arrival[u]:.6g} > T_clk {t_clk:.6g}" for u in late
    ]
    if witnesses:
        return failed_certificate("period", subject, witnesses, t_clk=t_clk)
    return passed_certificate(
        "period",
        subject,
        t_clk=t_clk,
        max_arrival=max(arrival.values(), default=0.0),
    )


# ----------------------------------------------------------------------
# retiming
# ----------------------------------------------------------------------
def check_retiming(iteration, tag: str, result) -> Certificate:
    """Label legality + stored-graph consistency, from a fresh pass."""
    subject = f"iteration {iteration.index}/{tag}"
    original = iteration.expanded.graph
    labels = result.labels
    stored = getattr(result, "graph", None)
    witnesses = check_retiming_labels(original, labels, stored)
    if stored is not None and not witnesses:
        witnesses += cycle_conservation_witnesses(original, stored, samples=8)
    total = derived_total_flip_flops(original, labels)
    stored_total = getattr(result, "total_ffs", None)
    if stored_total is not None and stored_total != total:
        witnesses.append(
            f"result claims {stored_total} flip-flops, labels imply {total}"
        )
    if witnesses:
        return failed_certificate("retiming", subject, witnesses)
    return passed_certificate("retiming", subject, total_ffs=total)


# ----------------------------------------------------------------------
# area
# ----------------------------------------------------------------------
def check_area(iteration, tag: str, result, report, tech) -> Certificate:
    """Re-sum the per-tile flip-flop accounting against the report."""
    subject = f"iteration {iteration.index}/{tag}"
    stored = getattr(result, "graph", None)
    if stored is None:
        return skipped_certificate(
            "area", subject, "no stored retimed graph to account"
        )
    unit_region = iteration.expanded.unit_region
    grid = iteration.grid
    reserved = getattr(iteration, "repeater_used", None)
    if reserved is None:
        reserved = grid.used

    ff_count = {}
    n_f = 0
    n_fn = 0
    for (u, _v, _k), w in stored.connections():
        if w <= 0:
            continue
        n_f += w
        if stored.kind(u) == INTERCONNECT:
            n_fn += w
        region = unit_region.get(u, IO_REGION)
        ff_count[region] = ff_count.get(region, 0) + w

    witnesses: List[str] = []
    violations = {}
    n_foa = 0
    for region, count in ff_count.items():
        if region == IO_REGION:
            continue
        cap = grid.capacity.get(region)
        if cap is None:
            witnesses.append(f"flip-flops charged to unknown region {region!r}")
            continue
        remaining = cap - reserved.get(region, 0.0)
        fits = int(max(0.0, remaining) // tech.ff_area)
        over = max(0, count - fits)
        if over:
            violations[region] = over
            n_foa += over

    for name, fresh, reported in (
        ("N_F", n_f, report.n_f),
        ("N_FN", n_fn, report.n_fn),
        ("N_FOA", n_foa, report.n_foa),
    ):
        if fresh != reported:
            witnesses.append(f"{name}: reported {reported}, re-summed {fresh}")
    if dict(report.ff_count) != ff_count:
        witnesses.append(
            _dict_mismatch("ff_count", dict(report.ff_count), ff_count)
        )
    if dict(report.violations) != violations:
        witnesses.append(
            _dict_mismatch("violations", dict(report.violations), violations)
        )
    if witnesses:
        return failed_certificate("area", subject, witnesses)
    return passed_certificate(
        "area", subject, n_f=n_f, n_fn=n_fn, n_foa=n_foa
    )


def _dict_mismatch(name: str, reported: dict, fresh: dict) -> str:
    diffs = []
    for key in sorted(set(reported) | set(fresh), key=str):
        a, b = reported.get(key), fresh.get(key)
        if a != b:
            diffs.append(f"{key}: reported {a}, re-summed {b}")
        if len(diffs) >= 4:
            break
    return f"{name} mismatch ({'; '.join(diffs)})"


# ----------------------------------------------------------------------
# repeater
# ----------------------------------------------------------------------
def check_repeaters(
    iteration, tech, repeater_backend: Optional[str] = None
) -> Certificate:
    """Grid reservations equal the repeater-stage snapshot, re-summed."""
    subject = f"iteration {iteration.index}"
    snapshot = getattr(iteration, "repeater_used", None)
    if snapshot is None:
        return skipped_certificate(
            "repeater", subject, "outcome predates repeater audit snapshot"
        )
    grid = iteration.grid
    witnesses: List[str] = []
    for region in sorted(set(grid.used) | set(snapshot)):
        live = grid.used.get(region, 0.0)
        reserved = snapshot.get(region, 0.0)
        if live < -_AREA_TOL or reserved < -_AREA_TOL:
            witnesses.append(f"region {region}: negative reserved area")
        if abs(live - reserved) > _AREA_TOL:
            witnesses.append(
                f"region {region}: grid used {live:.6g} != repeater "
                f"reservation {reserved:.6g}"
            )
    n_repeaters = getattr(iteration, "n_repeaters", None)
    total = sum(snapshot.values())
    if repeater_backend == "path" and n_repeaters is not None:
        expected = n_repeaters * tech.repeater_area
        if abs(total - expected) > _AREA_TOL:
            witnesses.append(
                f"total reserved {total:.6g} != {n_repeaters} repeaters x "
                f"{tech.repeater_area:.6g} = {expected:.6g}"
            )
    if witnesses:
        return failed_certificate("repeater", subject, witnesses)
    return passed_certificate(
        "repeater", subject, total_area=total, n_repeaters=n_repeaters
    )


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def check_routing(iteration) -> Certificate:
    """Re-count the congestion summary from the per-cell usage map."""
    subject = f"iteration {iteration.index}"
    usage = getattr(iteration, "route_usage", None)
    summary = getattr(iteration, "route_congestion", None)
    if usage is None or summary is None:
        return skipped_certificate(
            "routing", subject, "outcome predates routing audit snapshot"
        )
    grid = iteration.grid
    witnesses: List[str] = []
    max_usage = 0
    overflowed = 0
    overflow_known = True
    for cell, use in usage.items():
        if use < 0:
            witnesses.append(f"cell {cell}: negative track usage {use}")
        max_usage = max(max_usage, use)
        region = grid.region_of_cell.get(cell)
        if region is None:
            overflow_known = False
            continue
        if use > TRACKS[grid.kind[region]]:
            overflowed += 1

    fresh = {
        "used_cells": float(len(usage)),
        "max_usage": float(max_usage),
    }
    if overflow_known:
        fresh["overflowed_cells"] = float(overflowed)
    for key, value in fresh.items():
        reported = summary.get(key)
        if reported is None or abs(reported - value) > _TOL:
            witnesses.append(
                f"{key}: reported {reported}, re-counted {value:g}"
            )
    if witnesses:
        return failed_certificate("routing", subject, witnesses)
    return passed_certificate("routing", subject, **fresh)
