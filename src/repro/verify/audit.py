"""Offline audit of saved planning runs.

``audit_target`` points the verification layer at artifacts on disk:

* an ``outcome.ckpt`` file (or any ``repro-ckpt/1`` outcome file);
* a circuit's checkpoint directory containing ``outcome.ckpt``;
* a checkpoint *root* holding several circuit subdirectories — every
  completed outcome underneath is audited;
* a ``repro-verify-outcome/1`` JSON snapshot written by
  ``plan --outcome-json`` (:mod:`repro.verify.outcome_io`).

Checkpoint headers are validated structurally (schema, kind, payload
checksum) before unpickling; the run *fingerprint* is deliberately not
required — an audit has no graph/config pair to re-fingerprint against,
and its whole point is to re-derive the claims instead of trusting
provenance.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import VerificationError
from repro.resilience.checkpoint import CKPT_SCHEMA, KIND_OUTCOME
from repro.verify.certificate import VerificationReport
from repro.verify.outcome_io import load_outcome_json
from repro.verify.plan import verify_outcome


def load_outcome_checkpoint(path):
    """Unpickle a committed ``repro-ckpt/1`` outcome file, verified.

    Raises:
        VerificationError: The file is unreadable, corrupt (header,
            schema, or payload checksum), or not an outcome snapshot —
            a corrupt artifact cannot be *certified*, only rejected.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise VerificationError(f"cannot read checkpoint {path}: {exc}") from exc
    newline = data.find(b"\n")
    if newline < 0:
        raise VerificationError(f"{path}: truncated checkpoint (no header line)")
    try:
        header = json.loads(data[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise VerificationError(f"{path}: corrupt checkpoint header ({exc})")
    if not isinstance(header, dict) or header.get("schema") != CKPT_SCHEMA:
        raise VerificationError(
            f"{path}: not a {CKPT_SCHEMA} file "
            f"(schema={header.get('schema') if isinstance(header, dict) else None!r})"
        )
    if header.get("kind") != KIND_OUTCOME:
        raise VerificationError(
            f"{path}: checkpoint kind {header.get('kind')!r} is not an "
            "outcome snapshot (point the audit at outcome.ckpt)"
        )
    payload = data[newline + 1 :]
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        raise VerificationError(
            f"{path}: payload checksum mismatch (truncated or corrupted)"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise VerificationError(
            f"{path}: unpicklable outcome payload "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def discover_outcomes(target) -> List[Tuple[str, Path]]:
    """``(name, path)`` of every auditable outcome under ``target``."""
    target = Path(target)
    if target.is_file():
        return [(target.stem, target)]
    if not target.is_dir():
        raise VerificationError(f"no such file or directory: {target}")
    direct = target / "outcome.ckpt"
    if direct.exists():
        return [(target.name, direct)]
    # CheckpointManager lays runs out as <root>/<circuit>/outcome.ckpt,
    # so a batch root is two levels up from the outcomes; search
    # recursively and name each by its directory.
    found = sorted(
        (path.parent.name, path)
        for path in target.rglob("outcome.ckpt")
        if "quarantine" not in path.parts
    )
    if not found:
        raise VerificationError(
            f"no completed outcomes under {target} (expected outcome.ckpt "
            "files; was the run interrupted before finishing?)"
        )
    return found


def load_outcome(path):
    """Load one auditable outcome: ``.json`` snapshot or ``.ckpt`` pickle."""
    path = Path(path)
    if path.suffix == ".json":
        return load_outcome_json(path)
    return load_outcome_checkpoint(path)


def audit_target(
    target, fault=None
) -> List[Tuple[str, Optional[str], VerificationReport]]:
    """Audit every outcome under ``target``.

    Returns ``(name, fault_note, report)`` per outcome. ``fault`` (a
    :class:`~repro.resilience.faults.ResultFault`) corrupts each
    loaded outcome *in memory* before verification — the CI harness
    proving the audit rejects what it should; the on-disk artifact is
    never modified.
    """
    results = []
    for name, path in discover_outcomes(target):
        outcome = load_outcome(path)
        note = None
        if fault is not None:
            note = fault.apply(outcome)
        results.append((name, note, verify_outcome(outcome)))
    return results
