"""End-to-end certification of a planning outcome.

``verify_outcome`` walks every iteration of a
:class:`~repro.core.planner.PlanningOutcome` through the checker
catalogue of :mod:`repro.verify.checkers` and aggregates the
certificates into a :class:`~repro.verify.certificate.VerificationReport`.
Each certificate is exported as a ``verify/<checker>`` trace span, so
an audited run's trace records what was certified alongside what was
computed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import NOOP_TRACER
from repro.tech.params import DEFAULT_TECH
from repro.verify.certificate import Certificate, VerificationReport
from repro.verify.checkers import iteration_certificates


def verify_iteration(
    iteration, tech, repeater_backend: Optional[str] = None
) -> List[Certificate]:
    """Certify one planning iteration; returns its certificates."""
    return iteration_certificates(
        iteration, tech, repeater_backend=repeater_backend
    )


def verify_outcome(outcome, tracer=None) -> VerificationReport:
    """Certify a completed planning outcome, iteration by iteration.

    Works on live outcomes, outcomes restored from ``repro-ckpt/1``
    checkpoints, and outcomes rebuilt from audit JSON — anything with
    the :class:`~repro.core.planner.PlanningOutcome` shape. The
    returned report is *not* attached to the outcome here; the caller
    (e.g. ``plan_interconnect(verify=True)``) decides that.
    """
    if tracer is None:
        tracer = NOOP_TRACER
    config = getattr(outcome, "config", None)
    tech = getattr(config, "tech", None) or DEFAULT_TECH
    backend = getattr(config, "repeater_backend", None)
    certificates: List[Certificate] = []
    with tracer.span("verify", circuit=outcome.circuit) as span:
        for iteration in outcome.iterations:
            for cert in verify_iteration(
                iteration, tech, repeater_backend=backend
            ):
                certificates.append(cert)
                with tracer.span(
                    f"verify/{cert.checker}", subject=cert.subject
                ) as cspan:
                    cspan.set(
                        ok=cert.ok,
                        skipped=cert.skipped,
                        witnesses=len(cert.witnesses),
                    )
        report = VerificationReport(
            circuit=outcome.circuit, certificates=certificates
        )
        span.set(
            ok=report.ok,
            certificates=len(certificates),
            failed=len(report.failed()),
        )
    return report
