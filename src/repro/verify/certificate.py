"""Structured certificates for independent plan verification.

A :class:`Certificate` is the unit of trust: one checker, one subject
(e.g. ``iteration 1/LAC``), a pass/fail verdict, and — on failure —
the *witnesses* that violate the invariant, so a failing certificate
is actionable without re-running the checker. A
:class:`VerificationReport` aggregates every certificate produced for
one :class:`~repro.core.planner.PlanningOutcome`.

Checker names are an ownership contract: each invariant belongs to
exactly one checker (``retiming``, ``period``, ``area``, ``repeater``,
``routing``, ``equivalence``), and the differential fuzz harness in
:mod:`repro.verify.fuzz` asserts that each
:class:`~repro.resilience.faults.ResultFault` corruption trips its
owning checker and no other.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

#: The checker catalogue (ownership order, used for stable sorting).
CHECKERS = (
    "retiming",
    "period",
    "area",
    "repeater",
    "routing",
    "equivalence",
)


@dataclasses.dataclass
class Certificate:
    """One checker's verdict on one subject.

    Attributes:
        checker: Owning checker name (one of :data:`CHECKERS`).
        subject: What was checked, e.g. ``"iteration 1/LAC"``.
        ok: True when the invariant holds (or the check was skipped).
        witnesses: Human-readable violations; empty when ``ok``.
        details: Re-derived quantities backing the verdict.
        skipped: True when the subject lacked the data to check (e.g.
            an outcome predating the audit fields); ``ok`` stays True
            so old outcomes audit cleanly, but the skip is visible.
    """

    checker: str
    subject: str
    ok: bool
    witnesses: List[str] = dataclasses.field(default_factory=list)
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)
    skipped: bool = False

    @property
    def label(self) -> str:
        return f"{self.checker}[{self.subject}]"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "checker": self.checker,
            "subject": self.subject,
            "ok": self.ok,
            "skipped": self.skipped,
            "witnesses": list(self.witnesses),
            "details": dict(self.details),
        }


def failed_certificate(
    checker: str, subject: str, witnesses: List[str], **details: Any
) -> Certificate:
    return Certificate(
        checker=checker,
        subject=subject,
        ok=False,
        witnesses=witnesses,
        details=details,
    )


def passed_certificate(
    checker: str, subject: str, **details: Any
) -> Certificate:
    return Certificate(checker=checker, subject=subject, ok=True, details=details)


def skipped_certificate(checker: str, subject: str, note: str) -> Certificate:
    return Certificate(
        checker=checker,
        subject=subject,
        ok=True,
        details={"note": note},
        skipped=True,
    )


@dataclasses.dataclass
class VerificationReport:
    """Every certificate produced for one planning outcome."""

    circuit: str
    certificates: List[Certificate] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.certificates)

    def failed(self) -> List[Certificate]:
        return [c for c in self.certificates if not c.ok]

    def failed_checkers(self) -> Tuple[str, ...]:
        """Distinct checkers with >= 1 failed certificate, stably ordered."""
        seen = {c.checker for c in self.failed()}
        ordered = [name for name in CHECKERS if name in seen]
        ordered += sorted(seen.difference(CHECKERS))
        return tuple(ordered)

    def summary(self) -> str:
        """One line: the verdict and, on failure, the guilty checkers."""
        n = len(self.certificates)
        failed = self.failed()
        skipped = sum(1 for c in self.certificates if c.skipped)
        note = f" ({skipped} skipped)" if skipped else ""
        if not failed:
            return f"verification: {n} certificates, all pass{note}"
        return (
            f"verification: FAILED — {len(failed)} of {n} certificates "
            f"({', '.join(self.failed_checkers())}){note}"
        )

    def format(self) -> str:
        """Multi-line report: the summary plus each failure's witnesses."""
        lines = [f"verification: {self.circuit}"]
        for cert in self.certificates:
            status = "skip" if cert.skipped else ("ok" if cert.ok else "FAIL")
            lines.append(f"  {status:>4} {cert.label}")
            if not cert.ok:
                for witness in cert.witnesses[:8]:
                    lines.append(f"         - {witness}")
                extra = len(cert.witnesses) - 8
                if extra > 0:
                    lines.append(f"         - ... and {extra} more")
        lines.append("  " + self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-verify/1",
            "circuit": self.circuit,
            "ok": self.ok,
            "certificates": [c.to_dict() for c in self.certificates],
        }
