"""Retiming legality primitives: a fresh pass over the original graph.

These functions re-derive retimed weights directly from the label map
— ``w_r(e) = w(e) + r(v) - r(u)`` — touching none of the solver-side
caches (no CSR snapshots, no warm accountants), and compare them
against whatever graph the solver stored. They are the single source
of truth for retiming legality: :func:`repro.retime.apply.verify_retiming`
and the :mod:`repro.verify.checkers` retiming certificate both build
on them.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import networkx as nx


def check_retiming_labels(
    original, labels: Mapping[str, int], stored=None
) -> List[str]:
    """Witnesses against legality of ``labels`` on ``original``.

    Checks, in one pass over the original connections:

    * host vertices keep ``r == 0`` (I/O timing preserved);
    * every re-derived weight ``w + r(v) - r(u)`` is non-negative;
    * when ``stored`` (the solver's retimed graph) is given, its unit
      set matches and every connection's weight equals the re-derived
      one.

    Returns an empty list when the retiming is legal (and consistent
    with ``stored``).
    """
    witnesses: List[str] = []
    for host in original.host_units():
        r = labels.get(host, 0)
        if r != 0:
            witnesses.append(f"host {host} has nonzero retiming label {r}")

    stored_units = None
    if stored is not None:
        stored_units = set(stored.units())
        original_units = set(original.units())
        for extra in sorted(stored_units - original_units)[:4]:
            witnesses.append(f"stored graph has unexpected unit {extra!r}")
        for missing in sorted(original_units - stored_units)[:4]:
            witnesses.append(f"stored graph is missing unit {missing!r}")

    for (u, v, key), w in original.connections():
        wr = w + labels.get(v, 0) - labels.get(u, 0)
        if wr < 0:
            witnesses.append(
                f"connection {u}->{v}#{key}: retimed weight {wr} < 0"
            )
        if stored is None or stored_units is None:
            continue
        if u not in stored_units or v not in stored_units:
            continue
        try:
            stored_w = stored.weight((u, v, key))
        except KeyError:
            witnesses.append(f"stored graph is missing connection {u}->{v}#{key}")
            continue
        if stored_w != wr:
            witnesses.append(
                f"connection {u}->{v}#{key}: stored weight {stored_w} != "
                f"label-derived {wr}"
            )
    if stored is not None and stored.num_connections != original.num_connections:
        witnesses.append(
            f"stored graph has {stored.num_connections} connections, "
            f"original has {original.num_connections}"
        )
    return witnesses


def derived_total_flip_flops(original, labels: Mapping[str, int]) -> int:
    """Total flip-flop count implied by ``labels``, from first principles."""
    total = 0
    for (u, v, _key), w in original.connections():
        total += w + labels.get(v, 0) - labels.get(u, 0)
    return total


def cycle_conservation_witnesses(
    original, retimed, samples: int = 16
) -> List[str]:
    """Flip-flop conservation on a sample of cycles.

    Retiming preserves the total weight around every cycle (the label
    terms telescope); a stored graph whose cycle weights drifted was
    not produced by any retiming. Samples up to ``samples`` simple
    cycles of the original graph.
    """
    simple_orig = original.simple_min_weight_digraph()
    simple_ret = retimed.simple_min_weight_digraph()
    witnesses: List[str] = []
    checked = 0
    for cycle in nx.simple_cycles(simple_orig):
        if checked >= samples:
            break
        checked += 1
        w_orig = _cycle_weight(simple_orig, cycle)
        w_ret = _cycle_weight(simple_ret, cycle)
        if w_ret is None:
            witnesses.append(
                f"cycle through {cycle[0]!r} missing from stored graph"
            )
        elif w_orig != w_ret:
            witnesses.append(
                f"cycle through {cycle[0]!r}: weight {w_orig} became {w_ret}"
            )
    return witnesses


def _cycle_weight(simple, cycle) -> Optional[int]:
    total = 0
    n = len(cycle)
    for i in range(n):
        u, v = cycle[i], cycle[(i + 1) % n]
        if not simple.has_edge(u, v):
            return None
        total += simple.edges[u, v]["weight"]
    return total
