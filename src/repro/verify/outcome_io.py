"""Portable JSON form of a planning outcome, for offline audits.

``repro-ckpt/1`` checkpoints pickle the live objects — perfect for
resuming, useless for handing a result across a trust boundary. This
module defines ``repro-verify-outcome/1``: a plain-JSON snapshot of
exactly what the verification checkers need (the expanded graph, the
unit-region map, the tile grid's capacity accounting, the retiming
labels and reports, the periods, and the routing/repeater audit
snapshots), written with :func:`repro.ioutil.atomic_write` and
re-loadable into real planner dataclasses so
``python -m repro verify outcome.json`` certifies it like any live
outcome.

Solver-side state (partition, floorplan, provenance, ledger) is
deliberately dropped: an audit re-derives claims, it does not resume
computation.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

from repro.errors import NetlistError, VerificationError
from repro.ioutil import atomic_write
from repro.netlist.io import graph_from_dict, graph_to_dict

OUTCOME_SCHEMA = "repro-verify-outcome/1"


def outcome_to_dict(outcome) -> Dict[str, Any]:
    """JSON-ready form of a :class:`~repro.core.planner.PlanningOutcome`."""
    config = outcome.config
    doc: Dict[str, Any] = {
        "schema": OUTCOME_SCHEMA,
        "circuit": outcome.circuit,
        "config": {
            "repeater_backend": config.repeater_backend,
            "tech": dataclasses.asdict(config.tech),
        },
        "iterations": [_iteration_to_dict(it) for it in outcome.iterations],
    }
    return doc


def _iteration_to_dict(it) -> Dict[str, Any]:
    grid = it.grid
    doc: Dict[str, Any] = {
        "index": it.index,
        "t_init": it.t_init,
        "t_min": it.t_min,
        "t_clk": it.t_clk,
        "infeasible": it.infeasible,
        "degraded": it.degraded,
        "t_clk_requested": it.t_clk_requested,
        "graph": graph_to_dict(it.expanded.graph),
        "unit_region": dict(it.expanded.unit_region),
        "grid": {
            "n_cols": grid.n_cols,
            "n_rows": grid.n_rows,
            "tile_size": grid.tile_size,
            "region_of_cell": [
                [c, r, region]
                for (c, r), region in sorted(grid.region_of_cell.items())
            ],
            "kind": dict(grid.kind),
            "capacity": dict(grid.capacity),
            "used": dict(grid.used),
        },
        "retimings": {},
        "repeater_used": getattr(it, "repeater_used", None),
        "n_repeaters": getattr(it, "n_repeaters", None),
        "route_usage": _usage_to_list(getattr(it, "route_usage", None)),
        "route_congestion": getattr(it, "route_congestion", None),
    }
    if it.min_area is not None:
        doc["retimings"]["min-area"] = _target_to_dict(
            it.min_area.result, it.min_area.report
        )
    if it.lac is not None:
        doc["retimings"]["LAC"] = _target_to_dict(
            it.lac.retiming, it.lac.report, n_wr=it.lac.n_wr
        )
    return doc


def _target_to_dict(result, report, **extra) -> Dict[str, Any]:
    doc = {
        "labels": {u: r for u, r in result.labels.items() if r != 0},
        "total_ffs": result.total_ffs,
        "report": {
            "ff_count": dict(report.ff_count),
            "violations": dict(report.violations),
            "n_foa": report.n_foa,
            "n_f": report.n_f,
            "n_fn": report.n_fn,
        },
    }
    doc.update(extra)
    return doc


def _usage_to_list(usage) -> Optional[list]:
    if usage is None:
        return None
    return [[c, r, use] for (c, r), use in sorted(usage.items())]


def save_outcome_json(outcome, path) -> None:
    """Write the audit snapshot of ``outcome`` to ``path`` atomically."""
    atomic_write(path, json.dumps(outcome_to_dict(outcome), indent=1))


def load_outcome_json(path):
    """Rebuild a verifiable outcome from a ``repro-verify-outcome/1`` file.

    Returns a real :class:`~repro.core.planner.PlanningOutcome` (with
    the solver-only fields absent) so every checker runs unchanged.

    Raises:
        VerificationError: The file is unreadable, not valid JSON, or
            not this schema.
    """
    try:
        with open(path) as f:
            text = f.read()
    except OSError as exc:
        raise VerificationError(f"cannot read outcome {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise VerificationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != OUTCOME_SCHEMA:
        raise VerificationError(
            f"{path} is not a {OUTCOME_SCHEMA} file "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    return outcome_from_dict(doc, source=str(path))


def outcome_from_dict(doc: Dict[str, Any], source: str = "<dict>"):
    from repro.core.planner import PlannerConfig, PlanningOutcome
    from repro.tech.params import Technology

    try:
        cfg = doc.get("config") or {}
        tech = Technology(**cfg["tech"]) if "tech" in cfg else Technology()
        config = PlannerConfig(
            repeater_backend=cfg.get("repeater_backend", "path"), tech=tech
        )
        iterations = [
            _iteration_from_dict(it_doc) for it_doc in doc["iterations"]
        ]
        return PlanningOutcome(
            circuit=doc["circuit"], config=config, iterations=iterations
        )
    except (KeyError, TypeError, ValueError, NetlistError) as exc:
        raise VerificationError(
            f"malformed outcome JSON {source}: {type(exc).__name__}: {exc}"
        ) from exc


def _iteration_from_dict(doc: Dict[str, Any]):
    from repro.core.lac import LACResult
    from repro.core.metrics import AreaReport
    from repro.core.planner import PlanningIteration, TimedRetiming
    from repro.retime.expand import ExpandedCircuit
    from repro.retime.minarea import RetimingResult
    from repro.tiles.grid import TileGrid

    graph = graph_from_dict(doc["graph"])
    grid_doc = doc["grid"]
    grid = TileGrid(
        n_cols=grid_doc["n_cols"],
        n_rows=grid_doc["n_rows"],
        tile_size=grid_doc["tile_size"],
        region_of_cell={
            (c, r): region for c, r, region in grid_doc["region_of_cell"]
        },
        kind=dict(grid_doc["kind"]),
        capacity=dict(grid_doc["capacity"]),
        used=dict(grid_doc["used"]),
        block_region={},
    )
    expanded = ExpandedCircuit(
        graph=graph,
        unit_region=dict(doc["unit_region"]),
        unit_provenance={},
        n_connections_expanded=0,
    )

    def _target(target_doc):
        labels = {u: int(r) for u, r in target_doc["labels"].items()}
        try:
            retimed = graph.retimed(labels)
        except NetlistError:
            # Illegal labels: keep the result loadable so the retiming
            # checker can fail it with witnesses instead of crashing
            # the audit.
            retimed = None
        result = RetimingResult(
            labels=labels,
            graph=retimed,
            period=None,
            total_ffs=int(target_doc["total_ffs"]),
        )
        rep = target_doc["report"]
        report = AreaReport(
            ff_count={k: int(v) for k, v in rep["ff_count"].items()},
            violations={k: int(v) for k, v in rep["violations"].items()},
            n_foa=int(rep["n_foa"]),
            n_f=int(rep["n_f"]),
            n_fn=int(rep["n_fn"]),
        )
        return result, report

    min_area = None
    lac = None
    retimings = doc.get("retimings") or {}
    if "min-area" in retimings:
        result, report = _target(retimings["min-area"])
        min_area = TimedRetiming(result=result, report=report, seconds=0.0)
    if "LAC" in retimings:
        result, report = _target(retimings["LAC"])
        lac = LACResult(
            retiming=result,
            report=report,
            n_wr=int(retimings["LAC"].get("n_wr", 0)),
            tile_weights={},
            history=[],
        )

    usage = doc.get("route_usage")
    return PlanningIteration(
        index=int(doc["index"]),
        partition=None,
        floorplan=None,
        grid=grid,
        expanded=expanded,
        t_init=float(doc["t_init"]),
        t_min=float(doc["t_min"]),
        t_clk=float(doc["t_clk"]),
        min_area=min_area,
        lac=lac,
        lac_seconds=0.0,
        infeasible=bool(doc.get("infeasible", False)),
        degraded=bool(doc.get("degraded", False)),
        t_clk_requested=doc.get("t_clk_requested"),
        repeater_used=doc.get("repeater_used"),
        n_repeaters=doc.get("n_repeaters"),
        route_usage=(
            None
            if usage is None
            else {(c, r): int(use) for c, r, use in usage}
        ),
        route_congestion=doc.get("route_congestion"),
    )
