"""Independent plan certification: the ``repro.verify`` audit layer.

Everything the planner claims — retiming legality, register counts,
clock-period feasibility, per-tile LAC area, repeater reservations,
routing congestion — is re-derived here from first principles, by code
that shares no caches or incremental state with the solvers that
produced the claims (translation validation, applied to a CAD flow).
Each re-derivation yields a :class:`Certificate`; an outcome's
certificates aggregate into a :class:`VerificationReport`:

* :mod:`repro.verify.timing` — independent arrival-time computation
  (``Δ(v) <= T_clk``) over the register-free subgraph;
* :mod:`repro.verify.retiming` — ``w_r(e) = w(e) + r(v) - r(u)``
  re-derivation, host-label pinning, cycle conservation;
* :mod:`repro.verify.checkers` — the per-iteration certificate
  checkers and their exclusive-ownership contract;
* :mod:`repro.verify.sim` — bounded random-simulation equivalence
  (the behavioural belt to the structural braces);
* :mod:`repro.verify.plan` — outcome-level aggregation with trace
  spans (``plan --verify``);
* :mod:`repro.verify.audit` — offline audits of checkpoint
  directories and JSON snapshots (``python -m repro verify <target>``);
* :mod:`repro.verify.outcome_io` — the portable
  ``repro-verify-outcome/1`` JSON snapshot format;
* :mod:`repro.verify.fuzz` — differential fuzzing of the verifier
  itself against injected
  :class:`~repro.resilience.faults.ResultFault` corruptions.

The audit/fuzz entry points are imported lazily (via module
``__getattr__``) so that importing :mod:`repro.verify` from inside the
core planner never drags in the planner again.
"""

from repro.verify.certificate import (
    CHECKERS,
    Certificate,
    VerificationReport,
    failed_certificate,
    passed_certificate,
    skipped_certificate,
)
from repro.verify.checkers import iteration_certificates
from repro.verify.plan import verify_iteration, verify_outcome
from repro.verify.retiming import (
    check_retiming_labels,
    cycle_conservation_witnesses,
    derived_total_flip_flops,
)
from repro.verify.sim import equivalence_certificate
from repro.verify.timing import combinational_arrivals, critical_period

_LAZY = {
    "audit_target": "repro.verify.audit",
    "discover_outcomes": "repro.verify.audit",
    "load_outcome": "repro.verify.audit",
    "load_outcome_checkpoint": "repro.verify.audit",
    "differential_fuzz": "repro.verify.fuzz",
    "FuzzCase": "repro.verify.fuzz",
    "fuzz_summary": "repro.verify.fuzz",
    "OUTCOME_SCHEMA": "repro.verify.outcome_io",
    "load_outcome_json": "repro.verify.outcome_io",
    "outcome_to_dict": "repro.verify.outcome_io",
    "save_outcome_json": "repro.verify.outcome_io",
}

__all__ = [
    "CHECKERS",
    "Certificate",
    "VerificationReport",
    "failed_certificate",
    "passed_certificate",
    "skipped_certificate",
    "iteration_certificates",
    "verify_iteration",
    "verify_outcome",
    "check_retiming_labels",
    "cycle_conservation_witnesses",
    "derived_total_flip_flops",
    "equivalence_certificate",
    "combinational_arrivals",
    "critical_period",
    *sorted(_LAZY),
]


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
